"""The SPHINX server: control process + scheduling modules (paper §3.2).

The server runs a control loop (the "control process") that moves DAGs
and jobs through the finite-state automaton, invoking the module
responsible for each state:

* RECEIVED dags -> **DAG reducer** (replica-aware elimination),
* RUNNING dags  -> **planner** (ready-set selection, policy filtering,
  feedback filtering, algorithm choice, transfer planning),
* incoming tracker reports -> **feedback** + **prediction** updates.

All state lives in warehouse tables; the server checkpoints the
warehouse on a period, and :class:`SphinxServer.recover` builds a new
server from the last checkpoint (paper: "easily recoverable from
internal component failures").

Client communication is message-based over the RPC bus: clients call
``submit_dag`` / ``report_status`` and drain ``fetch_messages`` for
planning decisions, mirroring the message-handling module's
incoming/outgoing tables.

Wakeup discipline (``ServerConfig.mode``): in ``"poll"`` mode the
control process ticks on a fixed ``tick_s`` period, the paper's
literal cron-style loop.  In ``"push"`` mode (the default) the loop
blocks on a :class:`~repro.sim.engine.Wakeup` latch signaled by the
things that can actually create plannable work — a DAG submission, a
completion/cancellation report (which also releases active slots,
refunds quota, and updates feedback), a virtual-data regeneration —
plus a deadline timer derived from the nearest pending job timeout,
the dirty-dag retry period, and the next checkpoint.  A quiescent
server schedules zero kernel events.  The FSA/table semantics are
unchanged: state still lives in warehouse rows and every pass runs the
same ``tick()``; only the wakeup discipline differs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro import obs as obs_mod
from repro.core.algorithms import SiteView, make_algorithm
from repro.core.client import client_service_name
from repro.core.dag_reducer import DagReducer
from repro.core.feedback import ReliabilityTracker
from repro.core.policies import PolicyEngine, QuotaExceededError
from repro.core.prediction import CompletionTimeEstimator
from repro.core.serialize import payload_to_dag
from repro.core.states import DagState, JobState
from repro.core.warehouse import Warehouse
from repro.services.monitoring import MonitoringService
from repro.services.rls import ReplicaService
from repro.services.rpc import RpcBus
from repro.sim.engine import Environment, Wakeup
from repro.workflow.dag import Dag

__all__ = ["ServerConfig", "SphinxServer"]

# Enum .value lookups cost a descriptor call each; the control loop
# compares job/dag states hundreds of thousands of times per run, so the
# string values are hoisted to module constants.
_JOB_UNPLANNED = JobState.UNPLANNED.value
_JOB_PLANNED = JobState.PLANNED.value
_JOB_SUBMITTED = JobState.SUBMITTED.value
_JOB_FINISHED = JobState.FINISHED.value
_JOB_CANCELLED = JobState.CANCELLED.value
_JOB_REMOVED = JobState.REMOVED.value
_JOB_DONE_STATES = (_JOB_FINISHED, _JOB_REMOVED)
_DAG_RECEIVED = DagState.RECEIVED.value
_DAG_RUNNING = DagState.RUNNING.value
_DAG_FINISHED = DagState.FINISHED.value


@dataclass(slots=True)
class ServerConfig:
    """Tunable behaviour of one SPHINX server instance."""

    name: str = "sphinx"
    algorithm: str = "completion-time"
    algorithm_kwargs: dict[str, Any] = field(default_factory=dict)
    #: feedback reliability filter on feasible sites (paper's with/without).
    use_feedback: bool = True
    #: control-plane wakeup discipline: "push" (event-driven, default)
    #: or "poll" (fixed ``tick_s`` cadence) — see the module docstring.
    mode: str = "push"
    #: control-process period in "poll" mode; in "push" mode the retry
    #: pacing for dags that could not be fully planned (quota/feedback
    #: pressure may change without an observable report).
    tick_s: float = 5.0
    #: client-side job timeout before cancellation + replan.
    job_timeout_s: float = 1800.0
    #: planned-load correction in completion-time prediction (see
    #: repro.core.prediction); ablation knob.
    use_prediction_correction: bool = True
    #: "ewma" tracks the near-future environment (default); "mean" is
    #: eq. 3 read literally; ablation knob.
    estimator_mode: str = "ewma"
    #: CPU-equivalents one planned job is charged as in the correction;
    #: > 1 accounts for the transfer/queue pressure a job brings.
    prediction_correction_strength: float = 4.0
    #: warehouse checkpoint period; 0 disables checkpointing.
    checkpoint_interval_s: float = 300.0
    #: safety valve: a job cancelled more than this many times fails the
    #: run loudly instead of looping forever.  None = unbounded (paper).
    max_attempts: Optional[int] = None
    #: transactional push delivery: outbox rows survive until the
    #: client's ``deliver`` ack and un-acked batches are redelivered
    #: (chaos runs, where the wire can eat a batch).  Off by default —
    #: the lossless-transport fast path deletes before sending and
    #: schedules no ack callbacks, keeping default runs bit-identical.
    reliable_delivery: bool = False
    #: presume a PLANNED/SUBMITTED job lost (cancel + replan) after this
    #: many seconds without a report.  The server-side liveness backstop
    #: for plans or terminal reports dropped by a faulty transport or a
    #: crashed client.  None (default) disables the pass entirely.
    presume_lost_after_s: Optional[float] = None
    #: proactive planning: when a DAG starts RUNNING, book advance
    #: reservations for its later stages via the ``condor-g`` RPC,
    #: co-allocating each parallel stage across the best-predicted
    #: sites.  Jobs whose reservation confirms are planned straight to
    #: the reserved site and claim its held slots.  Off by default —
    #: the reactive feedback loop is the paper's configuration.
    reserve_ahead: bool = False
    #: walltime margin applied to stage duration/readiness estimates
    #: when sizing reservation windows (> 1 absorbs estimator error).
    reservation_slack: float = 1.5
    #: live migration off draining sites: on a spot-eviction notice
    #: (:meth:`SphinxServer.drain_notice`) evict every in-flight job at
    #: the site so its checkpoint is persisted and the job replans onto
    #: a live site inside the notice window, instead of losing the work
    #: at the reclaim instant.  None (default) means "auto": off unless
    #: a chaos plan's eviction axis arms it; an explicit False wins
    #: over the plan (the kill-and-resubmit baseline).
    migrate_on_drain: Optional[bool] = None
    #: job checkpointing: > 0 makes every planned job persist progress
    #: each interval (at ``job_checkpoint_cost_s`` CPU-seconds per
    #: write), so a killed attempt resumes from its last checkpoint
    #: rather than zero.  None = auto (chaos plan decides); 0 = off.
    job_checkpoint_interval_s: Optional[float] = None
    job_checkpoint_cost_s: Optional[float] = None
    #: incremental site-view cache: keep one :class:`SiteView` per site
    #: and invalidate O(1) on the transitions that can change it (a job
    #: planned/started/finished/cancelled at the site, a completion
    #: report feeding the estimator, a monitoring refresh) instead of
    #: rebuilding every view from warehouse reads for every job
    #: planned.  Decision-identical to full rebuild (property-tested);
    #: the knob exists for that test and for bisecting, not for users.
    view_cache: bool = True


class SphinxServer:
    """One SPHINX server instance, competing on a shared grid."""

    def __init__(
        self,
        env: Environment,
        bus: RpcBus,
        config: ServerConfig,
        site_catalog: Mapping[str, int],
        monitoring: MonitoringService,
        rls: ReplicaService,
        warehouse: Optional[Warehouse] = None,
        obs=None,
    ):
        if not site_catalog:
            raise ValueError("server needs at least one site in the catalog")
        if config.mode not in ("poll", "push"):
            raise ValueError(
                f"unknown control-plane mode {config.mode!r} "
                "(expected 'poll' or 'push')"
            )
        self.env = env
        self.bus = bus
        self.config = config
        self.site_catalog = dict(site_catalog)
        self.monitoring = monitoring
        self.rls = rls

        #: observability (spans over the FSA + planner metrics); strictly
        #: passive, defaults to the shared no-op facade.
        self.obs = obs_mod.get(obs)
        self._trace = self.obs.tracer.enabled
        #: wall-clock phase attribution (no-op facade when obs is off);
        #: exclusive timers, so nested phases never double-count.
        self._phases = self.obs.phases
        #: dag_id -> open root span; job_id -> open span of the current
        #: placement attempt (ended by the terminal report).
        self._dag_spans: dict[str, Any] = {}
        self._job_spans: dict[str, Any] = {}
        #: job_id -> sim time it last became plannable (submission for
        #: roots, last parent completion, or own cancellation) — the
        #: numerator of the planning-latency histogram.
        self._ready_since: dict[str, float] = {}
        m = self.obs.metrics
        self._m_planning_latency = m.histogram("server.planning_latency_s")
        self._m_jobs_planned = m.counter("server.jobs_planned",
                                         server=config.name)
        self._m_jobs_completed = m.counter("server.jobs_completed",
                                           server=config.name)
        self._m_resubmissions = m.counter("server.resubmissions",
                                          server=config.name)
        self._m_timeouts = m.counter("server.timeouts", server=config.name)
        self._m_passes = m.counter("server.control_passes",
                                   server=config.name)
        self._m_migrations = m.counter("server.migrations",
                                       server=config.name)
        self._m_ckpt_restores = m.counter("job.checkpoint_restores",
                                          server=config.name)
        self._m_preemption_loss = m.histogram("server.preemption_loss_s",
                                              server=config.name)

        self.warehouse = warehouse if warehouse is not None else Warehouse()
        self._init_tables()
        self.feedback = ReliabilityTracker(self.warehouse, obs=obs)
        self.estimator = CompletionTimeEstimator(
            self.warehouse, mode=config.estimator_mode
        )
        self.policy = PolicyEngine(self.warehouse)
        self.reducer = DagReducer(rls)
        self.algorithm = make_algorithm(
            config.algorithm, **config.algorithm_kwargs
        )
        # Durable algorithm state (e.g. QosDeadline's rotation cursors)
        # lives in the warehouse so crash-restarts stay deterministic.
        self.algorithm.bind_state(self.warehouse)
        #: per-dag map of remaining levels below each job (memoized for
        #: deadline re-budgeting and stage reservation).
        self._depth_cache: dict[str, dict[str, int]] = {}
        #: reserve-ahead bookkeeping: job_id -> reservation group and
        #: res_id -> group.  Deliberately in-memory only — a reservation
        #: lost to a server crash is reclaimed by the site's window-end
        #: expiry, which is cheaper than replaying RPC state.
        self._job_reservations: dict[str, dict] = {}
        self._reservation_groups: dict[str, dict] = {}
        self.reservations_requested = 0
        self.reservations_confirmed = 0

        #: live DAG objects reconstructed from payloads (cache over the
        #: dag payload column; rebuilt lazily after recovery).
        self._dag_cache: dict[str, Dag] = {}
        # The message sequence must clear every undelivered message a
        # restored warehouse carries over, or the first post-recovery
        # send collides with a surviving msg_id.
        next_seq = 0
        for msg in self.warehouse.table("outbox").select(copy=False):
            mid = msg["msg_id"]
            if mid.startswith("m") and mid[1:].isdigit():
                next_seq = max(next_seq, int(mid[1:]) + 1)
        self._msg_seq = itertools.count(next_seq)
        #: per-site (planned, running) counters kept incrementally so the
        #: planner never scans the jobs table; rebuilt from the table on
        #: construction, which covers recovery.
        self._site_active: dict[str, list[int]] = {
            s: [0, 0] for s in self.site_catalog
        }
        #: candidate pool handed to the policy filter every plan; the
        #: catalog is immutable for the server's lifetime, so one tuple
        #: serves every job (``tuple(t)`` returns ``t`` unchanged, so
        #: the quota-exempt fast path allocates nothing per job).
        self._catalog_sites: tuple[str, ...] = tuple(self.site_catalog)
        #: incremental site-view cache (``config.view_cache``): site ->
        #: its current SiteView, plus the monitoring snapshot identity
        #: it was built against.  Everything else a view reads is
        #: invalidated explicitly at the mutation site (see
        #: ``_invalidate_site_view`` callers); monitoring refreshes are
        #: caught by snapshot identity on read, so the cache needs no
        #: hook into the monitoring service.
        self._use_view_cache = config.view_cache
        self._view_cache: dict[str, SiteView] = {}
        self._view_snap: dict[str, Any] = {}
        #: federation seam: a callable ``site -> (planned, running)``
        #: merged into every view's load counters (peer-shard load from
        #: digests).  None — the default — is branch-free off the view
        #: cache hit path and keeps single-server runs decision-identical.
        self._remote_load = None
        self._rebuild_site_counters()
        #: dag_ids whose ready set may have changed since the last
        #: planner pass (new RUNNING dag, job finished/cancelled, or a
        #: ready job left unplanned — quota/feedback may free up).  The
        #: planner only walks these instead of every RUNNING dag.
        #: Seeded with every unfinished dag, which covers recovery.
        self._dirty_dags: set[str] = {
            r["dag_id"]
            for r in self.warehouse.table("dags").select(
                predicate=lambda r: r["state"] != _DAG_FINISHED, copy=False
            )
        }

        # Counters the experiments read.
        self.resubmission_count = 0
        self.timeout_count = 0
        self.stage_in_failures = 0
        self.regeneration_count = 0
        self.migration_count = 0
        self.checkpoint_restore_count = 0
        #: CPU-seconds reported lost to preemption across all attempts.
        self.preempted_work_s = 0.0
        #: site -> published eviction deadline while it drains (kept
        #: through the reclaim outage; cleared when the site is back).
        #: The planner skips these sites; deliberately in-memory — a
        #: recovered server re-learns live drains from fresh notices,
        #: and ``presume_lost_after_s`` backstops what it missed.
        self._draining: dict[str, float] = {}

        self.service_name = f"sphinx-server-{config.name}"
        if bus.has_service(self.service_name):
            # Fail fast and whole: without this guard the bus would
            # reject the duplicate mid-registration (first method wins)
            # and the two servers would silently share one service name.
            raise ValueError(
                f"service {self.service_name!r} is already on the bus — "
                "give each concurrent server a unique ServerConfig.name"
            )
        bus.register(self.service_name, "submit_dag", self._rpc_submit_dag)
        bus.register(self.service_name, "report_status", self._rpc_report_status)
        bus.register(self.service_name, "fetch_messages", self._rpc_fetch_messages)

        #: push mode: the control-process latch (see module docstring)
        #: and the set of clients already rung since their last drain.
        self._push = config.mode == "push"
        self._wakeup = Wakeup(env)
        #: sim time of the earliest live deadline timer (inf = none)
        #: and the timer itself; see _arm_deadline.
        self._deadline_at = float("inf")
        self._deadline_ev = None
        #: clients with outbox rows enqueued since the last flush, in
        #: first-dirtied order (dict-as-ordered-set for determinism).
        self._dirty_clients: dict[str, None] = {}
        #: clients with a reliable-delivery batch awaiting its ack.
        self._delivery_inflight: set[str] = set()
        if self._push:
            # A restored warehouse may carry undelivered messages (e.g.
            # dag-finished notifications recovery keeps); deliver them
            # now so clients are not left waiting on a ring that the
            # crashed server already consumed.
            for row in self.warehouse.table("outbox").select(copy=False):
                self._dirty_clients[row["client_id"]] = None
            self._flush_outbox()

        self.last_checkpoint: Optional[dict] = None
        self._proc = env.process(self._control_process())

    def shutdown(self) -> None:
        """Simulate a server crash/stop: drop off the bus, halt the loop.

        The warehouse (and ``last_checkpoint``) survive the object; see
        :mod:`repro.core.recovery` for bringing a replacement up.
        """
        self.bus.unregister_service(self.service_name)
        if self._proc.is_alive:
            self._proc.interrupt("shutdown")

    # ------------------------------------------------------------------ schema
    def _init_tables(self) -> None:
        w = self.warehouse
        if "dags" not in w:
            w.create_table(
                "dags",
                ("dag_id", "client_id", "user", "priority", "state",
                 "received_at", "finished_at", "payload"),
                key="dag_id",
            )
        if "jobs" not in w:
            w.create_table(
                "jobs",
                ("job_id", "dag_id", "state", "site", "attempts",
                 "last_status", "planned_at", "finished_at",
                 "completion_time_s", "checkpoint_fraction"),
                key="job_id",
            )
        if "outbox" not in w:
            w.create_table(
                "outbox",
                ("msg_id", "client_id", "kind", "payload"),
                key="msg_id",
            )
        # ensure_index is idempotent and builds from existing rows, so
        # this also covers warehouses restored from a checkpoint.
        w.table("dags").ensure_index("state")
        w.table("jobs").ensure_index("state")
        w.table("outbox").ensure_index("client_id")

    # ------------------------------------------------------------- RPC handlers
    def _rpc_submit_dag(self, client_id: str, user: str,
                        dag_payload: dict, priority: int = 10) -> str:
        """Message-handling module: accept a scheduling request.

        ``priority`` is the submitting user's standing (smaller = more
        important); the planner serves higher-priority DAGs' ready jobs
        first within each pass.
        """
        dag = payload_to_dag(dag_payload)
        dags = self.warehouse.table("dags")
        if dag.dag_id in dags:
            raise ValueError(f"duplicate dag {dag.dag_id!r}")
        dags.insert({
            "dag_id": dag.dag_id,
            "client_id": client_id,
            "user": user,
            "priority": int(priority),
            "state": DagState.RECEIVED.value,
            "received_at": self.env.now,
            "finished_at": None,
            "payload": dag_payload,
        })
        jobs = self.warehouse.table("jobs")
        for jid in dag.job_ids:
            jobs.insert({
                "job_id": jid,
                "dag_id": dag.dag_id,
                "state": JobState.UNPLANNED.value,
                "site": None,
                "attempts": 0,
                "last_status": None,
                "planned_at": None,
                "finished_at": None,
                "completion_time_s": None,
                "checkpoint_fraction": 0.0,
            })
        self._dag_cache[dag.dag_id] = dag
        if self.obs.enabled:
            # Roots are plannable from the submission instant; successors
            # get stamped as their last parent completes.
            for jid in dag.roots:
                self._ready_since[jid] = self.env.now
            if self._trace:
                span = self.obs.tracer.start_span(
                    f"dag {dag.dag_id}", kind="dag",
                    component=self.config.name, lane=dag.dag_id,
                    dag_id=dag.dag_id, user=user, priority=int(priority),
                    n_jobs=len(dag), algorithm=self.config.algorithm,
                )
                self._dag_spans[dag.dag_id] = span
                self.obs.tracer.add_event(span, "submit",
                                          client_id=client_id)
        self._wake()
        return "accepted"

    def _rpc_report_status(
        self,
        job_id: str,
        status: str,
        site: str,
        completion_time_s: Optional[float] = None,
        reason: Optional[str] = None,
        missing: Optional[list] = None,
        checkpointed_fraction: float = 0.0,
        lost_work_s: float = 0.0,
    ) -> str:
        """Tracker report ingestion (feedback + prediction + automaton)."""
        jobs = self.warehouse.table("jobs")
        row = jobs.get(job_id, copy=False)
        if row is None:
            raise KeyError(f"unknown job {job_id!r}")
        if status == "running":
            if (row["state"] == _JOB_PLANNED
                    and row["last_status"] != "running"):
                jobs.update(job_id, state=_JOB_SUBMITTED,
                            last_status="running")
                self._count_transition(site, planned=-1, running=+1)
                if self._trace:
                    span = self._job_spans.get(job_id)
                    if span is not None:
                        self.obs.tracer.add_event(span, "running", site=site)
            elif row["state"] == _JOB_SUBMITTED:
                jobs.update(job_id, last_status="running")
        elif status == "completed":
            if row["state"] == _JOB_FINISHED:
                return "duplicate"
            self._release_active(row, site)
            jobs.update(
                job_id,
                state=_JOB_FINISHED,
                last_status="completed",
                finished_at=self.env.now,
                completion_time_s=completion_time_s,
            )
            self.feedback.record_completion(site)
            if completion_time_s is not None:
                self._phases.push("estimator")
                self.estimator.record(site, completion_time_s)
                self._phases.pop()
                # avg/predicted completion just moved; the feedback
                # tally above is *not* a view input (it filters the
                # candidate list upstream), so only this needs it.
                self._invalidate_site_view(site)
            if self.obs.enabled:
                self._m_jobs_completed.inc()
                # Successors become plannable now (the planner pops the
                # stamp; the last parent's completion wins, which is the
                # instant the child truly became ready).
                for child in self._dag(row["dag_id"]).children(job_id):
                    self._ready_since[child] = self.env.now
                if self._trace:
                    span = self._job_spans.pop(job_id, None)
                    if span is not None:
                        self.obs.tracer.end_span(
                            span, "ok",
                            completion_time_s=completion_time_s,
                        )
            # A completion may unlock successors: replan this dag.
            self._dirty_dags.add(row["dag_id"])
            self._maybe_finish_dag(row["dag_id"])
            self._wake()
        elif status == "cancelled":
            if row["state"] in (_JOB_FINISHED, _JOB_CANCELLED):
                return "duplicate"
            # The reservation to return is the one at the *planned* site.
            # A stale cancel from a superseded attempt may name a site the
            # job has since been replanned away from; refunding there would
            # corrupt both ledgers.  (row is a live view: read before the
            # update below nulls the column.)
            charged_site = row["site"]
            self._release_active(row, site)
            jobs.update(
                job_id,
                state=_JOB_CANCELLED,
                last_status=reason or "cancelled",
                site=None,
            )
            if checkpointed_fraction > 0.0:
                # The attempt's fraction is relative to its (already
                # reduced) runtime; fold it into the overall fraction so
                # progress across attempts only ever grows.
                prev = row["checkpoint_fraction"]
                jobs.update(
                    job_id,
                    checkpoint_fraction=min(
                        1.0, prev + (1.0 - prev) * checkpointed_fraction
                    ),
                )
            if lost_work_s > 0.0:
                self.preempted_work_s += lost_work_s
                if self.obs.enabled:
                    self._m_preemption_loss.observe(lost_work_s)
            self._dirty_dags.add(row["dag_id"])
            if reason == "stage-in":
                # A missing *source* replica is not the execution site's
                # fault; penalizing it would poison the reliability pool.
                self.stage_in_failures += 1
                if missing:
                    self._regenerate_lost_inputs(row["dag_id"], missing)
                elif self._push:
                    # Every source had a live replica, so the transfer
                    # failed at the *destination* — an unreachable site.
                    # Push mode replans the instant this report lands;
                    # without a penalty the planner re-picks the dead
                    # site (its completion estimate is frozen at its
                    # healthy-era value) and hot-loops plan -> stage-in
                    # -> cancel until the horizon.  Poll mode keeps the
                    # legacy behaviour for trace compatibility.
                    self.feedback.record_cancellation(site)
            else:
                self.feedback.record_cancellation(site)
            self.resubmission_count += 1
            if reason == "timeout":
                self.timeout_count += 1
            if self.obs.enabled:
                self._m_resubmissions.inc()
                self.obs.metrics.counter(
                    "server.cancellations", server=self.config.name,
                    reason=reason or "cancelled",
                ).inc()
                if reason == "timeout":
                    self._m_timeouts.inc()
                self._ready_since[job_id] = self.env.now
                if self._trace:
                    span = self._job_spans.pop(job_id, None)
                    if span is not None:
                        self.obs.tracer.end_span(
                            span, "cancelled",
                            reason=reason or "cancelled",
                        )
            user = self._dag_user(row["dag_id"])
            dag = self._dag(row["dag_id"])
            self.policy.refund(
                user, charged_site or site, dag.job(job_id).requirements
            )
            # Slot released, quota refunded, feedback updated: replan now.
            self._wake()
            if (self.config.max_attempts is not None
                    and row["attempts"] >= self.config.max_attempts):
                raise RuntimeError(
                    f"job {job_id} exceeded {self.config.max_attempts} attempts"
                )
        else:
            raise ValueError(f"unknown status {status!r}")
        self._flush_outbox()  # e.g. a dag-finished message from this report
        return "ok"

    def _rpc_fetch_messages(self, client_id: str) -> list[dict]:
        """Drain this client's outgoing messages, oldest first."""
        # Poll-mode drain; push mode delivers directly (_flush_outbox),
        # so clear any pending-flush mark to avoid an empty delivery.
        self._dirty_clients.pop(client_id, None)
        outbox = self.warehouse.table("outbox")
        # copy=False is safe: delete() unlinks the dicts from the table
        # but they stay readable for building the reply below.
        mine = outbox.select(where={"client_id": client_id}, copy=False)
        for msg in mine:
            outbox.delete(msg["msg_id"])
        return [
            {"kind": m["kind"], "payload": m["payload"]} for m in mine
        ]

    # --------------------------------------------------------------- control loop
    def _control_process(self):
        from repro.sim import Interrupt

        next_checkpoint = (
            self.env.now + self.config.checkpoint_interval_s
            if self.config.checkpoint_interval_s > 0
            else None
        )
        push = self._push
        while True:
            self.tick()
            if next_checkpoint is not None and self.env.now >= next_checkpoint:
                self.checkpoint()
                next_checkpoint = self.env.now + self.config.checkpoint_interval_s
            try:
                if not push:
                    yield self.env.timeout(self.config.tick_s)
                    continue
                wake = self._wakeup.wait()
                if wake.triggered:
                    # A ring landed during this pass; run another now.
                    yield wake
                    continue
                deadline = self._next_deadline(next_checkpoint)
                if deadline is not None:
                    delay = deadline - self.env.now
                    if delay <= 0.0:
                        # An overdue deadline must not busy-spin the
                        # loop at one instant; pace it like a poll tick.
                        delay = self.config.tick_s
                    self._arm_deadline(self.env.now + delay)
                yield wake  # quiescent server: zero scheduled events
            except Interrupt:
                return  # shutdown

    def _wake(self) -> None:
        """Signal the push-mode control latch (no-op in poll mode)."""
        if self._push:
            self._wakeup.set()

    def _arm_deadline(self, when: float) -> None:
        """Ensure a live timer rings the control latch at/before ``when``.

        Kernel timers cannot be withdrawn, so instead of arming a fresh
        timeout every pass (one stale heap entry each), the loop keeps at
        most one *live* deadline timer and re-arms only when the needed
        deadline moves earlier than it.  A timer that fires early (its
        deadline was superseded by a later one) just triggers a recompute
        pass, which is a no-op.
        """
        if self.env.now < self._deadline_at <= when:
            return  # the live timer already covers this deadline
        stale = self._deadline_ev
        if stale is not None and self.env.lean and not stale.processed:
            stale.cancel()  # superseded by an earlier deadline
        self._deadline_at = when

        def _ring(_ev, when=when):
            if self._deadline_at == when:
                self._deadline_at = float("inf")
                self._deadline_ev = None
            self._wakeup.set()

        self._deadline_ev = self.env.timeout(when - self.env.now)
        self._deadline_ev.add_callback(_ring)

    def _next_deadline(self, next_checkpoint: Optional[float]) -> Optional[float]:
        """The next instant a pass must run even without a wakeup.

        Three sources: the checkpoint period; a retry deadline while
        any dag is dirty (its ready jobs could not all be planned —
        quota or feedback pressure can relax without a report); and a
        safety net at the nearest pending job timeout, in case a
        client-side report is lost and no wakeup ever arrives.
        """
        deadline = next_checkpoint
        if self._dirty_dags or (
            self.config.reliable_delivery and self._dirty_clients
        ):
            # Dirty dags retry on quota/feedback drift; kept-dirty
            # clients (crashed receiver) retry their redelivery.
            retry = self.env.now + self.config.tick_s
            deadline = retry if deadline is None else min(deadline, retry)
        oldest = self._nearest_planned_at()
        if oldest is not None:
            # Grace for plan delivery + staging before the client's
            # tracker starts its own clock; a late pass is a no-op.
            pending = oldest + self.config.job_timeout_s + self.config.tick_s
            if self.config.presume_lost_after_s is not None:
                pending = min(
                    pending, oldest + self.config.presume_lost_after_s
                )
            if deadline is None or pending < deadline:
                deadline = pending
        return deadline

    def _nearest_planned_at(self) -> Optional[float]:
        """Earliest planning instant among in-flight jobs (timeout and
        presumed-lost deadlines are both offsets from it)."""
        self._phases.push("warehouse")
        jobs = self.warehouse.table("jobs")
        nearest = None
        for state in (_JOB_PLANNED, _JOB_SUBMITTED):
            for row in jobs.select(where={"state": state}, copy=False):
                planned_at = row["planned_at"]
                if planned_at is None:
                    continue
                if nearest is None or planned_at < nearest:
                    nearest = planned_at
        self._phases.pop()
        return nearest

    def tick(self) -> None:
        """One control-process pass (public for tests and recovery)."""
        phases = self._phases
        self._m_passes.inc()
        phases.push("planning")
        self._reduce_new_dags()
        if self.config.presume_lost_after_s is not None:
            self._requeue_lost_jobs()
        self._plan_ready_jobs()
        phases.pop()
        phases.push("transport")
        self._flush_outbox()
        phases.pop()

    def checkpoint(self) -> None:
        """Snapshot the warehouse (the recovery point)."""
        self._phases.push("warehouse")
        self.last_checkpoint = self.warehouse.snapshot()
        self._phases.pop()

    # --------------------------------------------------------------- DAG reducer
    def _reduce_new_dags(self) -> None:
        dags = self.warehouse.table("dags")
        jobs = self.warehouse.table("jobs")
        for row in dags.select(where={"state": _DAG_RECEIVED}):
            dag_id = row["dag_id"]
            dags.update(dag_id, state=DagState.REDUCING.value)
            dag = self._dag(dag_id)
            removable = self.reducer.removable_jobs(dag)
            for jid in removable:
                jobs.update(jid, state=_JOB_REMOVED,
                            finished_at=self.env.now)
            if self._trace and removable:
                span = self._dag_spans.get(dag_id)
                if span is not None:
                    self.obs.tracer.add_event(span, "reduced",
                                              removed_jobs=len(removable))
            if len(removable) == len(dag):
                dags.update(dag_id, state=_DAG_FINISHED,
                            finished_at=self.env.now)
                self._end_dag_span(dag_id, fully_reduced=True)
                self._notify_dag_finished(row["client_id"], dag_id)
            else:
                dags.update(dag_id, state=DagState.REDUCED.value)
                dags.update(dag_id, state=_DAG_RUNNING)
                self._dirty_dags.add(dag_id)
                if self.config.reserve_ahead:
                    self._reserve_dag_stages(dags.get(dag_id, copy=False))

    # -------------------------------------------------------------------- planner
    def _plan_ready_jobs(self) -> None:
        """Plan ready jobs of every *dirty* RUNNING dag.

        A clean dag cannot grow new ready jobs between ticks (that takes
        a completion or cancellation, which dirty it), so quiescent dags
        cost nothing per tick.  A dag stays dirty while any of its ready
        jobs could not be planned — quota or feedback may change.
        """
        dirty = self._dirty_dags
        if not dirty:
            return
        dags = self.warehouse.table("dags")
        jobs = self.warehouse.table("jobs")
        running = []
        for dag_id in dirty:
            drow = dags.get(dag_id, copy=False)
            if drow is not None and drow["state"] == _DAG_RUNNING:
                running.append(drow)
        # Serve higher-priority users first; FIFO within a priority.
        running.sort(
            key=lambda r: (r["priority"], r["received_at"], r["dag_id"])
        )
        still_dirty: set[str] = set()
        rows_get = jobs._rows.get
        for drow in running:
            dag = self._dag(drow["dag_id"])
            done = [
                jid
                for jid in dag.job_ids
                if rows_get(jid)["state"] in _JOB_DONE_STATES
            ]
            fully_planned = True
            for jid in dag.ready_jobs(done):
                jrow = rows_get(jid)
                if jrow["state"] not in (_JOB_UNPLANNED, _JOB_CANCELLED):
                    continue  # already planned/submitted
                if not self._plan_job(drow, dag, jrow):
                    fully_planned = False
            if not fully_planned:
                still_dirty.add(drow["dag_id"])
        self._dirty_dags = still_dirty

    def _plan_job(self, drow: dict, dag: Dag, jrow: dict) -> bool:
        """Try to place one ready job; False means retry next tick."""
        job = dag.job(jrow["job_id"])
        user = drow["user"]
        candidates = self.policy.feasible_sites(
            user, job.requirements, self._catalog_sites
        )
        if self._draining:
            # Never place new work on a site that published an eviction
            # notice (it would be killed at the reclaim instant); if
            # *every* feasible site is draining, wait a tick rather than
            # knowingly burn the work.
            live = [s for s in candidates if s not in self._draining]
            if live:
                candidates = live
            else:
                self._plan_deferred(drow, job.job_id, "draining")
                return False
        feedback_dropped: list[str] = []
        if self.config.use_feedback:
            feasible = candidates
            candidates = self.feedback.reliable_sites(candidates)
            if self._trace and len(candidates) != len(feasible):
                kept = set(candidates)
                feedback_dropped = [s for s in feasible if s not in kept]
        if not candidates:
            self._plan_deferred(drow, job.job_id, "no-feasible-site")
            return False  # nothing feasible now; retry next tick
        views = [self._site_view(s) for s in candidates]
        site = None
        reservation_id = None
        group = self._job_reservations.get(job.job_id)
        if group is not None:
            if group["state"] == "confirmed" and group["site"] in candidates:
                # Plan straight to the reserved site; the plan carries
                # the res_id so the submission claims a held slot.
                site = group["site"]
                reservation_id = group["res_id"]
            else:
                # Rejected, still in flight, or the reserved site fell
                # out of the feasible pool — plan normally and walk away
                # from the booking (site-side expiry reclaims the slots
                # if nobody else in the group shows up either).
                self._abandon_job_reservation(job.job_id, group)
                group = None
        if site is None:
            if self.algorithm.wants_context:
                site = self.algorithm.choose_site_ctx(
                    job.job_id, views, self._plan_context(drow, dag, job.job_id)
                )
            else:
                site = self.algorithm.choose_site(job.job_id, views)
        if site is None:
            self._plan_deferred(drow, job.job_id, "no-site-chosen")
            return False
        try:
            self.policy.charge(user, site, job.requirements)
        except QuotaExceededError:
            self._plan_deferred(drow, job.job_id, "quota")
            return False  # racing reservations; retry next tick
        if group is not None:
            # Consume the booking only once the plan is definitely going
            # out (a quota defer above must keep it claimable).
            group["jobs"].discard(job.job_id)
            group["claimed"] += 1
            self._job_reservations.pop(job.job_id, None)
        jobs = self.warehouse.table("jobs")
        # jrow may be the live row; read attempts before update mutates it.
        attempt = jrow["attempts"] + 1
        fraction = jrow["checkpoint_fraction"]
        runtime_s = job.runtime_s
        if fraction > 0.0:
            # Resume from the last persisted checkpoint: the attempt
            # only has to run the unfinished remainder.
            runtime_s = job.runtime_s * (1.0 - fraction)
            self.checkpoint_restore_count += 1
            if self.obs.enabled:
                self._m_ckpt_restores.inc()
        jobs.update(
            job.job_id,
            state=_JOB_PLANNED,
            site=site,
            attempts=attempt,
            planned_at=self.env.now,
            last_status="planned",
        )
        self._count_transition(site, planned=+1)
        if self.obs.enabled:
            self._m_jobs_planned.inc()
            since = self._ready_since.pop(job.job_id, None)
            self._m_planning_latency.observe(
                self.env.now
                - (since if since is not None else drow["received_at"])
            )
            if self._trace:
                span = self.obs.tracer.start_span(
                    f"job {job.job_id}", kind="job",
                    parent=self._dag_spans.get(dag.dag_id),
                    component=self.config.name, lane=dag.dag_id,
                    job_id=job.job_id, dag_id=dag.dag_id, site=site,
                    attempt=attempt, algorithm=self.config.algorithm,
                    candidate_scores={
                        v.name: v.predicted_completion_s for v in views
                    },
                    feedback_dropped=feedback_dropped,
                )
                self._job_spans[job.job_id] = span
        plan_payload = {
            "job_id": job.job_id,
            "dag_id": dag.dag_id,
            "site": site,
            "attempt": attempt,
            "runtime_s": runtime_s,
            "user": user,
            "inputs": [
                {"lfn": f.lfn, "size_mb": f.size_mb} for f in job.inputs
            ],
            "outputs": [
                {"lfn": f.lfn, "size_mb": f.size_mb} for f in job.outputs
            ],
            "timeout_s": self.config.job_timeout_s,
            "reservation_id": reservation_id,
            # Plan origin: under a federation the client must report
            # this job to the shard that planned it, not to whatever
            # front door admitted the DAG.
            "server": self.service_name,
        }
        if self.config.job_checkpoint_interval_s:
            plan_payload["checkpoint_interval_s"] = (
                self.config.job_checkpoint_interval_s
            )
            plan_payload["checkpoint_cost_s"] = (
                self.config.job_checkpoint_cost_s or 0.0
            )
        self._send(drow["client_id"], "plan", plan_payload)
        return True

    def _plan_deferred(self, drow: dict, job_id: str, reason: str) -> None:
        """Record a planning pass that could not place a ready job."""
        if not self.obs.enabled:
            return
        self.obs.metrics.counter(
            "server.plan_deferred", server=self.config.name, reason=reason
        ).inc()
        if self._trace:
            span = self._dag_spans.get(drow["dag_id"])
            if span is not None:
                self.obs.tracer.add_event(span, "plan-deferred",
                                          job_id=job_id, reason=reason)

    # ------------------------------------------------------- drain notices/migration
    def drain_notice(self, site: str, deadline_s: Optional[float] = None) -> None:
        """A site published a spot-eviction notice (it is DRAINING).

        The planner stops placing new work there immediately.  With
        ``config.migrate_on_drain`` the server also evicts every
        in-flight job at the site inside the notice window: the client
        kills the attempt (the site persists its checkpoint first), the
        cancelled report refunds the draining site's quota charge, and
        the replan charges the target site — conserving both ledgers.
        ``presume_lost_after_s`` remains the backstop when the notice
        or the eviction message itself is lost in transit.
        """
        if site not in self.site_catalog:
            return  # not a site this server plans onto
        already = site in self._draining
        self._draining[site] = (
            deadline_s if deadline_s is not None else self.env.now
        )
        self._invalidate_site_view(site)
        if self.config.migrate_on_drain and not already:
            self._migrate_off(site, self._draining[site])
        self._wake()

    def drain_cleared(self, site: str) -> None:
        """The drained site's capacity is back; it may be planned again."""
        if self._draining.pop(site, None) is not None:
            self._invalidate_site_view(site)
            self._wake()

    def _migrate_off(self, site: str, deadline_s: float) -> None:
        """Evict in-flight jobs at ``site`` that cannot beat the reclaim.

        Work that can plausibly finish inside the notice window is left
        to run: evicting it would discard progress (or a queue slot)
        the drain was never going to take.  The remaining-time estimate
        is optimistic (it books all elapsed time since planning as
        progress, ignoring queueing and staging), which errs on the
        side of *not* evicting — a wrong guess is caught by the reclaim
        kill, whose cancelled report still carries the job's last
        checkpoint, so the miss costs at most one checkpoint interval
        of work.  Only jobs that genuinely cannot beat the deadline
        migrate.
        """
        jobs = self.warehouse.table("jobs")
        dags = self.warehouse.table("dags")
        slack = deadline_s - self.env.now
        moved = 0
        for state in (_JOB_PLANNED, _JOB_SUBMITTED):
            for row in jobs.select(where={"state": state}, copy=False):
                if row["site"] != site:
                    continue
                drow = dags.get(row["dag_id"], copy=False)
                if drow is None:
                    continue
                runtime = self._dag(row["dag_id"]).job(
                    row["job_id"]
                ).runtime_s * (1.0 - row["checkpoint_fraction"])
                elapsed = (
                    self.env.now - row["planned_at"]
                    if state == _JOB_SUBMITTED and row["planned_at"] is not None
                    else 0.0
                )
                if runtime - elapsed <= slack:
                    continue  # likely to finish before the reclaim
                self._send(drow["client_id"], "evict", {
                    "job_id": row["job_id"],
                    "attempt": row["attempts"],
                    "site": site,
                })
                moved += 1
        if moved:
            self.migration_count += moved
            if self.obs.enabled:
                self._m_migrations.inc(moved)
        self._flush_outbox()

    # ------------------------------------------------------ proactive reservations
    def _plan_context(self, drow: dict, dag: Dag, job_id: str) -> dict:
        """Per-job DAG context for context-aware algorithms (QosDeadline)."""
        return {
            "now": self.env.now,
            "received_at": drow["received_at"],
            "remaining_levels": self._remaining_levels(dag).get(job_id, 1),
        }

    def _remaining_levels(self, dag: Dag) -> dict[str, int]:
        """job_id -> own level plus the longest level chain below it."""
        cached = self._depth_cache.get(dag.dag_id)
        if cached is not None:
            return cached
        depth: dict[str, int] = {}
        for jid in reversed(dag.job_ids):
            below = max(
                (depth[c] for c in dag.children(jid)), default=0
            )
            depth[jid] = 1 + below
        self._depth_cache[dag.dag_id] = depth
        return depth

    def _stage_levels(self, dag: Dag) -> dict[int, list[str]]:
        """Group jobs by dependency level (0 = roots), topo-stable."""
        level: dict[str, int] = {}
        stages: dict[int, list[str]] = {}
        for jid in dag.job_ids:
            lvl = max(
                (level[p] + 1 for p in dag.parents(jid)), default=0
            )
            level[jid] = lvl
            stages.setdefault(lvl, []).append(jid)
        return stages

    def _reserve_dag_stages(self, drow: dict) -> None:
        """Book advance reservations for a new RUNNING dag's later stages.

        Each level after the roots gets a window starting at the
        estimated readiness instant (cumulative predicted stage
        durations, stretched by ``reservation_slack``), co-allocated
        across the best-predicted sites up to each site's CPU count.
        Confirmations arrive asynchronously; until then the group is
        "pending" and jobs that come ready early just plan normally.
        """
        dag = self._dag(drow["dag_id"])
        jobs = self.warehouse.table("jobs")
        stages = self._stage_levels(dag)
        if len(stages) < 2:
            return  # single-stage dags plan immediately; nothing to book
        candidates = list(self.site_catalog)
        if self.config.use_feedback:
            reliable = list(self.feedback.reliable_sites(candidates))
            if reliable:
                candidates = reliable
        views = [self._site_view(s) for s in candidates]
        start = self.env.now
        slack = self.config.reservation_slack
        for lvl in sorted(stages):
            stage_jobs = [
                jid for jid in stages[lvl]
                if jobs.get(jid, copy=False)["state"] == _JOB_UNPLANNED
            ]
            if not stage_jobs:
                continue
            duration = slack * max(
                self._job_duration_estimate(dag.job(jid))
                for jid in stage_jobs
            )
            if lvl > 0:
                self._reserve_stage(drow, lvl, stage_jobs, start, duration,
                                    views)
            start += duration

    def _job_duration_estimate(self, job) -> float:
        """Site-agnostic completion estimate for window sizing."""
        sampled = [
            avg for s in self.site_catalog
            if (avg := self.estimator.average_s(s)) is not None
        ]
        if sampled:
            return max(job.runtime_s, min(sampled))
        # Cold start: allow generously for queueing + transfer on top of
        # the nominal compute demand.
        return 3.0 * job.runtime_s

    def _reserve_stage(
        self,
        drow: dict,
        level: int,
        stage_jobs: list,
        start_s: float,
        duration_s: float,
        views: list,
    ) -> None:
        """Co-allocate one parallel stage across the best-predicted sites."""

        def rank(view) -> tuple:
            score = view.predicted_completion_s
            if score is None:
                score = view.avg_completion_s
            if score is None:
                score = float("inf")  # unsampled sites last, by size
            return (score, -view.n_cpus, view.name)

        remaining = list(stage_jobs)
        for view in sorted(views, key=rank):
            if not remaining:
                break
            chunk = remaining[: max(1, view.n_cpus)]
            remaining = remaining[len(chunk):]
            res_id = (
                f"{self.config.name}:{drow['dag_id']}:L{level}:{view.name}"
            )
            group = {
                "res_id": res_id,
                "site": view.name,
                "state": "pending",
                "jobs": set(chunk),
                "claimed": 0,
            }
            self._reservation_groups[res_id] = group
            for jid in chunk:
                self._job_reservations[jid] = group
            self.reservations_requested += 1
            ev = self.bus.call(
                f"/CN={self.service_name}",
                "condor-g",
                "reserve",
                res_id,
                view.name,
                start_s,
                duration_s,
                len(chunk),
            )
            ev.add_callback(
                lambda e, rid=res_id: self._reservation_ack(e, rid)
            )

    def _reservation_ack(self, ev, res_id: str) -> None:
        group = self._reservation_groups.get(res_id)
        if group is None:
            return
        if ev.ok and ev.value is True:
            group["state"] = "confirmed"
            self.reservations_confirmed += 1
            # Jobs deferred while the ack was in flight can now plan to
            # the reserved site.
            self._wake()
            return
        if not ev.ok:
            ev.defuse()
        group["state"] = "rejected"
        for jid in list(group["jobs"]):
            self._job_reservations.pop(jid, None)
        group["jobs"].clear()
        self._reservation_groups.pop(res_id, None)

    def _abandon_job_reservation(self, job_id: str, group: dict) -> None:
        """A job plans elsewhere; drop its claim on the booked window."""
        group["jobs"].discard(job_id)
        self._job_reservations.pop(job_id, None)
        if (
            not group["jobs"]
            and group["claimed"] == 0
            and group["state"] == "confirmed"
        ):
            # Nobody left to claim the window: release it at the site
            # now instead of letting it idle until expiry.
            group["state"] = "cancelled"
            self._reservation_groups.pop(group["res_id"], None)
            self.bus.call(
                f"/CN={self.service_name}",
                "condor-g",
                "cancel_reservation",
                group["res_id"],
                group["site"],
            ).add_callback(lambda e: e.defuse() if not e.ok else None)

    def _site_view(self, site: str) -> SiteView:
        snap = self.monitoring.snapshot(site)
        if self._use_view_cache:
            view = self._view_cache.get(site)
            if view is not None and self._view_snap[site] is snap:
                return view
        planned, unfinished = self._site_active[site]
        remote = self._remote_load
        if remote is not None:
            extra_planned, extra_running = remote(site)
            planned += extra_planned
            unfinished += extra_running
        n_cpus = self.site_catalog[site]
        self._phases.push("estimator")
        avg = self.estimator.average_s(site)
        predicted = None
        if avg is not None:
            predicted = (
                self.estimator.predicted_s(
                    site, planned, n_cpus,
                    strength=self.config.prediction_correction_strength,
                )
                if self.config.use_prediction_correction
                else avg
            )
        self._phases.pop()
        view = SiteView(
            name=site,
            n_cpus=n_cpus,
            planned_jobs=planned,
            unfinished_jobs=unfinished,
            monitored_queued=snap.queued_jobs if snap else None,
            monitored_running=snap.running_jobs if snap else None,
            avg_completion_s=avg,
            predicted_completion_s=predicted,
        )
        if self._use_view_cache:
            self._view_cache[site] = view
            self._view_snap[site] = snap
        return view

    def _invalidate_site_view(self, site: str) -> None:
        """Drop one site's cached view (its inputs just changed)."""
        self._view_cache.pop(site, None)

    def site_load_snapshot(self) -> dict:
        """Compact load digest of this server (the federation export).

        Only sites with nonzero active counters appear — on a large
        catalog the digest stays proportional to live load, not to
        catalog size.  ``inflight_dags`` is the admission-side
        saturation signal a meta-scheduler spills on.
        """
        return {
            "sites": {
                site: [counters[0], counters[1]]
                for site, counters in self._site_active.items()
                if counters[0] or counters[1]
            },
            "inflight_dags": len(self.unfinished_dags()),
        }

    # ---------------------------------------------------- virtual-data recovery
    def _regenerate_lost_inputs(self, dag_id: str, missing: list) -> None:
        """Re-derive inputs whose last live replica was lost.

        The virtual-data model (Chimera) records how every file is
        produced, so a lost file is not fatal: revert its producer from
        FINISHED back to CANCELLED and let the planner re-run it.  A
        lost *external* input has no producer and cannot be re-derived;
        the job keeps retrying until a replica holder resurfaces.
        """
        dag = self._dag(dag_id)
        jobs = self.warehouse.table("jobs")
        for lfn in missing:
            producer = dag.producer_of(lfn)
            if producer is None:
                continue  # external input: nothing to re-derive from
            prow = jobs.get(producer, copy=False)
            if prow is None or prow["state"] not in _JOB_DONE_STATES:
                continue  # already re-running
            if prow["state"] == _JOB_FINISHED and prow["site"] is not None:
                # A finished job still holds its quota charge; reverting
                # it without the refund would leak usage at the site it
                # finished on, once per regeneration.  (A REMOVED
                # producer was never planned, so it holds no charge.)
                self.policy.refund(
                    self._dag_user(dag_id), prow["site"],
                    dag.job(producer).requirements,
                )
            # A REMOVED producer was skipped because its output existed
            # in the catalog at reduction time; the replica is gone now,
            # so the skipped work must actually run.
            jobs.update(
                producer,
                state=JobState.CANCELLED.value,
                last_status="regenerate",
                site=None,
                finished_at=None,
                completion_time_s=None,
                # The lost output must be re-derived from scratch; any
                # old checkpoint predates the replica that is now gone.
                checkpoint_fraction=0.0,
            )
            self.regeneration_count += 1
            self._dirty_dags.add(dag_id)

    # -------------------------------------------------------------- bookkeeping
    def _count_transition(self, site: str, planned: int = 0,
                          running: int = 0) -> None:
        counters = self._site_active[site]
        counters[0] = max(counters[0] + planned, 0)
        counters[1] = max(counters[1] + running, 0)
        # The view reads these counters (and the load-corrected
        # prediction reads planned); O(1) invalidation per transition.
        self._view_cache.pop(site, None)

    def _release_active(self, row: dict, site: str) -> None:
        """Drop a terminal job from the per-site active counters."""
        if row["state"] == _JOB_SUBMITTED or \
                row["last_status"] == "running":
            self._count_transition(site, running=-1)
        elif row["state"] == _JOB_PLANNED:
            self._count_transition(site, planned=-1)

    def _rebuild_site_counters(self) -> None:
        """Reconstruct counters from the jobs table (recovery path)."""
        self._view_cache.clear()
        for counters in self._site_active.values():
            counters[0] = counters[1] = 0
        for row in self.warehouse.table("jobs").select(
            predicate=lambda r: r["state"] in (
                _JOB_PLANNED, _JOB_SUBMITTED
            ),
            copy=False,
        ):
            site = row["site"]
            if site not in self._site_active:
                continue
            if row["last_status"] == "running":
                self._count_transition(site, running=+1)
            else:
                self._count_transition(site, planned=+1)

    def _maybe_finish_dag(self, dag_id: str) -> None:
        jobs = self.warehouse.table("jobs")
        dags = self.warehouse.table("dags")
        dag = self._dag(dag_id)
        rows_get = jobs._rows.get
        for jid in dag.job_ids:
            if rows_get(jid)["state"] not in _JOB_DONE_STATES:
                return
        drow = dags.get(dag_id, copy=False)
        if drow["state"] == _DAG_FINISHED:
            return
        dags.update(dag_id, state=_DAG_FINISHED,
                    finished_at=self.env.now)
        self._end_dag_span(dag_id)
        self._notify_dag_finished(drow["client_id"], dag_id)

    def _end_dag_span(self, dag_id: str, fully_reduced: bool = False) -> None:
        span = self._dag_spans.pop(dag_id, None)
        if span is not None:
            self.obs.tracer.end_span(span, "ok", fully_reduced=fully_reduced)

    def _notify_dag_finished(self, client_id: str, dag_id: str) -> None:
        self._send(client_id, "dag-finished", {"dag_id": dag_id})

    def _send(self, client_id: str, kind: str, payload: dict) -> None:
        self.warehouse.table("outbox").insert({
            "msg_id": f"m{next(self._msg_seq):08d}",
            "client_id": client_id,
            "kind": kind,
            "payload": payload,
        })
        if self._push:
            self._dirty_clients[client_id] = None

    def _flush_outbox(self) -> None:
        """Push delivery: send each dirty client its drained batch.

        Called at the end of every enqueue scope (a control pass, a
        report handler), so a planning pass emitting many messages for
        one client costs a single ``deliver`` call — and, on a lean
        kernel, a single kernel event, versus the notify/fetch round
        trip's four.  The call is fire-and-forget (the bus pre-defuses
        faults); client delivery services are registered at construction
        and never unregistered, so a batch put on the wire here cannot
        be refused.  A client that never registered one degrades to
        poll semantics: its rows stay in the outbox for
        ``fetch_messages``.  Poll mode never marks clients dirty and
        keeps the ``fetch_messages`` drain untouched.
        """
        if not self._dirty_clients:
            return
        if self.config.reliable_delivery:
            self._flush_outbox_reliable()
            return
        outbox = self.warehouse.table("outbox")
        proxy = f"/CN={self.service_name}"
        for client_id in list(self._dirty_clients):
            if not self.bus.has_service(client_service_name(client_id)):
                continue
            mine = outbox.select(where={"client_id": client_id}, copy=False)
            for msg in mine:
                outbox.delete(msg["msg_id"])
            if mine:
                self.bus.call(
                    proxy,
                    client_service_name(client_id),
                    "deliver",
                    [{"kind": m["kind"], "payload": m["payload"]}
                     for m in mine],
                )
        self._dirty_clients.clear()

    def _flush_outbox_reliable(self) -> None:
        """Transactional push delivery (``config.reliable_delivery``).

        Rows stay in the outbox until the client's ``deliver`` ack
        lands; a failed or lost batch is redelivered after ``tick_s``
        and a crashed client keeps its rows until it re-registers.
        Redelivery makes the channel at-least-once — the client's
        (job_id, attempt) guard makes it effectively exactly-once.
        """
        outbox = self.warehouse.table("outbox")
        proxy = f"/CN={self.service_name}"
        keep: dict[str, None] = {}
        for client_id in list(self._dirty_clients):
            if client_id in self._delivery_inflight:
                keep[client_id] = None  # await the pending ack first
                continue
            if not self.bus.has_service(client_service_name(client_id)):
                keep[client_id] = None  # receiver down; retry later
                continue
            mine = outbox.select(where={"client_id": client_id}, copy=False)
            if not mine:
                continue
            msg_ids = [m["msg_id"] for m in mine]
            batch = [
                {"kind": m["kind"], "payload": m["payload"]} for m in mine
            ]
            self._delivery_inflight.add(client_id)
            ev = self.bus.call(
                proxy, client_service_name(client_id), "deliver", batch
            )
            ev.add_callback(
                lambda e, c=client_id, ids=msg_ids:
                    self._delivery_settled(e, c, ids)
            )
        self._dirty_clients = keep

    def _delivery_settled(self, ev, client_id: str,
                          msg_ids: list[str]) -> None:
        """Ack handler for one reliable-delivery batch."""
        self._delivery_inflight.discard(client_id)
        outbox = self.warehouse.table("outbox")
        if ev.ok:
            for mid in msg_ids:
                outbox.delete(mid)
            if outbox.select(where={"client_id": client_id}, copy=False):
                # Rows enqueued while the batch flew: flush them next pass.
                self._dirty_clients[client_id] = None
                self._wake()
            return
        ev.defuse()

        def _retry(_t, c=client_id):
            self._dirty_clients[c] = None
            self._wake()

        # Pace the redelivery like a poll tick — an immediate retry
        # against a partitioned client would spin at one instant.
        self.env.timeout(self.config.tick_s).add_callback(_retry)

    def _requeue_lost_jobs(self) -> None:
        """Presumed-lost backstop (``config.presume_lost_after_s``).

        An in-flight job whose plan (or terminal report) the transport
        ate produces no further signal; after the window expires the
        server cancels it server-side and replans, exactly like a
        tracker cancellation but without a feedback penalty — the wire,
        not the site, dropped the ball.  A straggler completion racing
        the requeue is absorbed by the duplicate guard.
        """
        window = self.config.presume_lost_after_s
        now = self.env.now
        jobs = self.warehouse.table("jobs")
        for state in (_JOB_PLANNED, _JOB_SUBMITTED):
            for row in jobs.select(where={"state": state}, copy=False):
                planned_at = row["planned_at"]
                if planned_at is None or now - planned_at < window:
                    continue
                job_id, site = row["job_id"], row["site"]
                self._release_active(row, site)
                jobs.update(
                    job_id,
                    state=_JOB_CANCELLED,
                    last_status="presumed-lost",
                    site=None,
                )
                self._dirty_dags.add(row["dag_id"])
                self.resubmission_count += 1
                user = self._dag_user(row["dag_id"])
                dag = self._dag(row["dag_id"])
                self.policy.refund(user, site, dag.job(job_id).requirements)
                if self.obs.enabled:
                    self._m_resubmissions.inc()
                    self.obs.metrics.counter(
                        "server.cancellations", server=self.config.name,
                        reason="presumed-lost",
                    ).inc()
                    self._ready_since[job_id] = now
                    if self._trace:
                        span = self._job_spans.pop(job_id, None)
                        if span is not None:
                            self.obs.tracer.end_span(
                                span, "cancelled", reason="presumed-lost"
                            )

    def _dag(self, dag_id: str) -> Dag:
        dag = self._dag_cache.get(dag_id)
        if dag is None:
            row = self.warehouse.table("dags").get(dag_id)
            dag = payload_to_dag(row["payload"])
            self._dag_cache[dag_id] = dag
        return dag

    def _dag_user(self, dag_id: str) -> str:
        return self.warehouse.table("dags").get(dag_id)["user"]

    # ------------------------------------------------------------ experiment API
    def dag_completion_times(self) -> dict[str, float]:
        """dag_id -> completion seconds for every finished DAG."""
        out = {}
        for row in self.warehouse.table("dags").select(
            where={"state": _DAG_FINISHED}, copy=False
        ):
            out[row["dag_id"]] = row["finished_at"] - row["received_at"]
        return out

    def unfinished_dags(self) -> tuple[str, ...]:
        return tuple(
            r["dag_id"]
            for r in self.warehouse.table("dags").select(
                predicate=lambda r: r["state"] != _DAG_FINISHED, copy=False
            )
        )

    def jobs_per_site(self) -> dict[str, int]:
        """site -> completed-job count (Fig. 6 series)."""
        counts: dict[str, int] = {}
        for row in self.warehouse.table("jobs").select(
            where={"state": _JOB_FINISHED}, copy=False
        ):
            if row["site"] is not None:
                counts[row["site"]] = counts.get(row["site"], 0) + 1
        return counts
