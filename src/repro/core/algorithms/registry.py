"""Algorithm registry: name -> fresh instance.

Algorithms are stateful (round-robin cursors), so the registry hands
out a new instance per call — two servers never share cursors.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.algorithms.base import SchedulingAlgorithm
from repro.core.algorithms.completion_time import CompletionTime
from repro.core.algorithms.num_cpus import NumCpus
from repro.core.algorithms.qos import QosDeadline
from repro.core.algorithms.queue_length import QueueLength
from repro.core.algorithms.round_robin import RoundRobin

__all__ = ["make_algorithm", "available_algorithms"]

_REGISTRY: dict[str, Callable[..., SchedulingAlgorithm]] = {
    RoundRobin.name: RoundRobin,
    NumCpus.name: NumCpus,
    QueueLength.name: QueueLength,
    CompletionTime.name: CompletionTime,
    QosDeadline.name: QosDeadline,
}


def available_algorithms() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def make_algorithm(name: str, **kwargs: Any) -> SchedulingAlgorithm:
    """A fresh instance of the named algorithm."""
    factory = _REGISTRY.get(name)
    if factory is None:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        )
    return factory(**kwargs)
