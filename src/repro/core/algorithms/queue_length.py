"""Queue-length load-rate selection (paper eq. 2).

    rate_i = (queued_jobs_i + running_jobs_i + planned_jobs_i) / CPU_i

queued/running come from the external monitoring service and carry its
staleness; planned comes from the local SPHINX server.  A site whose
snapshot is missing (never successfully polled) is treated as empty —
the optimistic reading a 2004 scheduler had no way to avoid, and the
precise mechanism by which blackhole sites keep attracting jobs until
feedback removes them.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.algorithms.base import SchedulingAlgorithm, SiteView

__all__ = ["QueueLength"]


class QueueLength(SchedulingAlgorithm):
    name = "queue-length"

    def choose_site(
        self, job_id: str, candidates: Sequence[SiteView]
    ) -> Optional[str]:
        if not candidates:
            return None

        def rate(v: SiteView) -> float:
            queued = v.monitored_queued if v.monitored_queued is not None else 0
            running = v.monitored_running if v.monitored_running is not None else 0
            return (queued + running + v.planned_jobs) / v.n_cpus

        return self._argmin(candidates, rate)
