"""Number-of-CPUs load-rate selection (paper eq. 1).

    rate_i = (planned_jobs_i + unfinished_jobs_i) / CPU_i

"utilizes resource-scheduling information of previously submitted jobs
in a local SPHINX server" — both counts are SPHINX-local; no external
monitoring is consulted.  The CPU count itself is the static catalog
number, which is the paper's point: a big site may already be
overloaded by *other* users and this algorithm cannot see that.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.algorithms.base import SchedulingAlgorithm, SiteView

__all__ = ["NumCpus"]


class NumCpus(SchedulingAlgorithm):
    name = "num-cpus"

    def choose_site(
        self, job_id: str, candidates: Sequence[SiteView]
    ) -> Optional[str]:
        if not candidates:
            return None
        return self._argmin(
            candidates,
            lambda v: (v.planned_jobs + v.unfinished_jobs) / v.n_cpus,
        )
