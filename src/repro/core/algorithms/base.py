"""Algorithm interface and the per-site information view.

The planner assembles one :class:`SiteView` per feasible site and asks
the algorithm to pick.  The view deliberately separates the three
information sources the paper compares:

* *static* — ``n_cpus`` (the catalog),
* *SPHINX-local* — ``planned_jobs`` / ``unfinished_jobs`` (what this
  server has in flight, from its own tables),
* *monitored* — ``monitored_queued`` / ``monitored_running`` (the
  possibly-stale external monitoring system),
* *feedback-derived* — ``avg_completion_s`` / ``predicted_completion_s``
  (tracker reports through the estimator).

An algorithm returning ``None`` means "no acceptable site"; the job
stays ready and is retried on the next planning pass.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["SchedulingAlgorithm", "SiteView"]


@dataclass(frozen=True, slots=True)
class SiteView:
    """Everything an algorithm may know about one feasible site."""

    name: str
    n_cpus: int
    planned_jobs: int = 0
    unfinished_jobs: int = 0
    monitored_queued: Optional[int] = None
    monitored_running: Optional[int] = None
    avg_completion_s: Optional[float] = None
    predicted_completion_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_cpus < 1:
            raise ValueError(f"site {self.name} must have >= 1 CPU")


class SchedulingAlgorithm(abc.ABC):
    """Picks an execution site for one job from the feasible pool."""

    #: registry key; subclasses must override.
    name: str = ""

    #: True when the algorithm wants per-job DAG context (deadline
    #: budgeting etc.); the planner then calls :meth:`choose_site_ctx`.
    wants_context: bool = False

    @abc.abstractmethod
    def choose_site(
        self, job_id: str, candidates: Sequence[SiteView]
    ) -> Optional[str]:
        """The chosen site name, or None when nothing is acceptable.

        ``candidates`` is never empty-filtered here: the planner only
        calls with a non-empty pool.  Determinism contract: given equal
        scores, earlier candidates win.
        """

    def choose_site_ctx(
        self, job_id: str, candidates: Sequence[SiteView], ctx: dict
    ) -> Optional[str]:
        """Context-aware variant; default ignores the context.

        ``ctx`` carries planner-side DAG state: ``now``, the owning
        DAG's ``received_at``, and ``remaining_levels`` (this job's
        level plus everything below it on the longest chain to a leaf).
        Only consulted when :attr:`wants_context` is True.
        """
        return self.choose_site(job_id, candidates)

    def bind_state(self, warehouse) -> None:
        """Attach durable algorithm state to the server's warehouse.

        Called once at server construction (and again after a
        crash-restart restore).  Stateless algorithms ignore it;
        stateful ones (QosDeadline's rotation cursors) persist their
        state in a table so restarts stay deterministic.
        """

    @staticmethod
    def _argmin(candidates: Sequence[SiteView], key) -> str:
        """First-wins argmin over candidate views."""
        best_name, best_score = None, None
        for view in candidates:
            score = key(view)
            if best_score is None or score < best_score:
                best_name, best_score = view.name, score
        assert best_name is not None
        return best_name
