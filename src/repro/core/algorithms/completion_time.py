"""Job-completion-time hybrid selection (paper eq. 3).

    choose  argmin_{i: A_i = 1}  Avg_comp_i / sum_k Avg_comp_k

"In the absence of the job completion rate information, SPHINX
schedules jobs on round robin technique until it has that information
for the remote sites.  Thus, it uses a hybrid approach to compensate
for unavailability of information."

Bootstrap rule implemented: while any feasible site still lacks
completion data **and has no outstanding probe** (planned jobs), pick
among those round-robin — every site gets sampled (giving the paper's
Fig. 6a full site coverage), but a silent site absorbs only one probe
instead of soaking up the whole ready set for a timeout period.  Once
every candidate has data or a probe in flight, take the argmin of the
predicted completion time over the sampled candidates (the estimator's
planned-load-corrected ``Avg_comp``, falling back to the raw average
when no prediction was supplied).  The normalization constant of eq. 3
does not change the argmin, so it is omitted.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.algorithms.base import SchedulingAlgorithm, SiteView

__all__ = ["CompletionTime"]


class CompletionTime(SchedulingAlgorithm):
    name = "completion-time"

    def __init__(self) -> None:
        self._bootstrap_cursor = 0

    def choose_site(
        self, job_id: str, candidates: Sequence[SiteView]
    ) -> Optional[str]:
        if not candidates:
            return None
        # One pass collects the probe-worthy pool *and* tracks the
        # sampled argmin; at 2,500 candidate sites per job the three
        # separate comprehensions this replaces dominated planning.
        # First-wins argmin (ties keep the earlier candidate) and the
        # probe rotation are unchanged — decision-identical.
        probe_worthy: list[SiteView] = []
        best_name: Optional[str] = None
        best_score: Optional[float] = None
        for v in candidates:
            avg = v.avg_completion_s
            if avg is None:
                if v.planned_jobs == 0 and v.unfinished_jobs == 0:
                    probe_worthy.append(v)
                continue
            score = v.predicted_completion_s
            if score is None:
                score = avg
            if best_score is None or score < best_score:
                best_name, best_score = v.name, score
        if probe_worthy:
            choice = probe_worthy[
                self._bootstrap_cursor % len(probe_worthy)
            ].name
            self._bootstrap_cursor += 1
            return choice
        # best_name is None when every candidate is an in-flight probe;
        # wait for one to land rather than piling more jobs onto
        # unknown sites.
        return best_name
