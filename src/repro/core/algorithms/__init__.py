"""Site-selection algorithms (paper §4.1).

Four strategies evaluated by the paper, plus extensions:

================  ==============================================  =========
name              selection rule                                  info used
================  ==============================================  =========
round-robin       cycle the feasible site list                    none
num-cpus          min (planned+unfinished)/CPUs        (eq. 1)    SPHINX-local
queue-length      min (queued+running+planned)/CPUs    (eq. 2)    monitoring
completion-time   min normalized Avg_comp, RR bootstrap (eq. 3)   tracker
qos-deadline      cheapest site meeting a deadline (extension)    tracker
================  ==============================================  =========

All operate on the *feasible* pool: policy-filtered (eq. 4) and, when
feedback is enabled, reliability-filtered.
"""

from repro.core.algorithms.base import SchedulingAlgorithm, SiteView
from repro.core.algorithms.registry import available_algorithms, make_algorithm
from repro.core.algorithms.round_robin import RoundRobin
from repro.core.algorithms.num_cpus import NumCpus
from repro.core.algorithms.queue_length import QueueLength
from repro.core.algorithms.completion_time import CompletionTime
from repro.core.algorithms.qos import QosDeadline

__all__ = [
    "CompletionTime",
    "NumCpus",
    "QosDeadline",
    "QueueLength",
    "RoundRobin",
    "SchedulingAlgorithm",
    "SiteView",
    "available_algorithms",
    "make_algorithm",
]
