"""QoS deadline-aware selection — the paper's stated future work.

"We are also developing methods to schedule jobs with variable Quality
of Service requirements" (§6).  This extension implements the natural
deadline variant on top of the completion-time machinery:

* among sites whose predicted completion time fits within a *safety
  margin* of the deadline (margin < 1 guards against stale/optimistic
  estimates), rotate round-robin — spreading deadline-safe load instead
  of racing everything to the single fastest site, which preserves the
  fast sites' headroom for jobs that will need it;
* if no site can meet the deadline, degrade gracefully to the plain
  completion-time argmin (finish as soon as possible);
* while sites lack data, bootstrap round-robin exactly like the hybrid.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.algorithms.base import SchedulingAlgorithm, SiteView

__all__ = ["QosDeadline"]


class QosDeadline(SchedulingAlgorithm):
    name = "qos-deadline"

    def __init__(self, deadline_s: float = 600.0, safety_margin: float = 0.6):
        if deadline_s <= 0:
            raise ValueError("deadline must be > 0")
        if not 0.0 < safety_margin <= 1.0:
            raise ValueError("safety margin must be in (0, 1]")
        self.deadline_s = deadline_s
        self.safety_margin = safety_margin
        self._bootstrap_cursor = 0
        self._spread_cursor = 0

    def choose_site(
        self, job_id: str, candidates: Sequence[SiteView]
    ) -> Optional[str]:
        if not candidates:
            return None
        unsampled = [v for v in candidates if v.avg_completion_s is None]
        if unsampled:
            choice = unsampled[self._bootstrap_cursor % len(unsampled)].name
            self._bootstrap_cursor += 1
            return choice

        def predicted(v: SiteView) -> float:
            if v.predicted_completion_s is not None:
                return v.predicted_completion_s
            return v.avg_completion_s  # type: ignore[return-value]

        budget = self.safety_margin * self.deadline_s
        feasible = [v for v in candidates if predicted(v) <= budget]
        if feasible:
            choice = feasible[self._spread_cursor % len(feasible)].name
            self._spread_cursor += 1
            return choice
        return self._argmin(candidates, predicted)
