"""QoS deadline-aware selection — the paper's stated future work.

"We are also developing methods to schedule jobs with variable Quality
of Service requirements" (§6).  This extension implements the natural
deadline variant on top of the completion-time machinery:

* among sites whose predicted completion time fits within a *safety
  margin* of the deadline (margin < 1 guards against stale/optimistic
  estimates), rotate round-robin — spreading deadline-safe load instead
  of racing everything to the single fastest site, which preserves the
  fast sites' headroom for jobs that will need it;
* if no site can meet the deadline, degrade gracefully to the plain
  completion-time argmin (finish as soon as possible);
* while sites lack data, bootstrap round-robin exactly like the hybrid.

Whole-DAG deadlines (DESIGN.md §5f)
-----------------------------------
``deadline_s`` is the budget for a *whole DAG*, counted from the instant
the server received it.  When the planner supplies context (it always
does; see :attr:`~repro.core.algorithms.base.SchedulingAlgorithm.
wants_context`), each job's per-stage budget is re-derived as sim-time
elapses::

    remaining  = deadline_s - (now - dag.received_at)
    budget     = safety_margin * remaining / remaining_levels

where ``remaining_levels`` counts this job's level plus the longest
chain of levels below it.  Early stages that finish fast leave slack to
later stages; a DAG already past its deadline degrades every remaining
job to finish-ASAP.  Without context (direct ``choose_site`` calls,
``dag_deadline=False``) the legacy static per-job interpretation
applies: every job is checked against ``safety_margin * deadline_s``.

Rotation cursors persist in the ``qos_cursors`` warehouse table (via
:meth:`bind_state`), so a crash-restarted server resumes the rotation
exactly where it stopped — the chaos invariant checker assumes
cross-restart determinism.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.algorithms.base import SchedulingAlgorithm, SiteView

__all__ = ["QosDeadline"]


class QosDeadline(SchedulingAlgorithm):
    name = "qos-deadline"
    wants_context = True

    _TABLE = "qos_cursors"
    _COLUMNS = ("cursor", "value")

    def __init__(
        self,
        deadline_s: float = 600.0,
        safety_margin: float = 0.6,
        dag_deadline: bool = True,
    ):
        if deadline_s <= 0:
            raise ValueError("deadline must be > 0")
        if not 0.0 < safety_margin <= 1.0:
            raise ValueError("safety margin must be in (0, 1]")
        self.deadline_s = deadline_s
        self.safety_margin = safety_margin
        self.dag_deadline = dag_deadline
        self._bootstrap_cursor = 0
        self._spread_cursor = 0
        self._table = None

    # -- durable state -----------------------------------------------------
    def bind_state(self, warehouse) -> None:
        """Persist rotation cursors in the server's warehouse.

        On a fresh warehouse the table is seeded from the in-memory
        cursors; on a restored warehouse (crash-restart drill) the
        cursors are loaded back, so the rotation continues exactly where
        the checkpoint left it.
        """
        if self._TABLE in warehouse:
            self._table = warehouse.table(self._TABLE)
        else:
            self._table = warehouse.create_table(
                self._TABLE, self._COLUMNS, key="cursor"
            )
        for name in ("bootstrap", "spread"):
            row = self._table.get(name)
            attr = f"_{name}_cursor"
            if row is None:
                self._table.insert({"cursor": name, "value": getattr(self, attr)})
            else:
                setattr(self, attr, row["value"])

    def _advance(self, name: str) -> None:
        attr = f"_{name}_cursor"
        value = getattr(self, attr) + 1
        setattr(self, attr, value)
        if self._table is not None:
            self._table.update(name, value=value)

    # -- selection ---------------------------------------------------------
    def choose_site(
        self, job_id: str, candidates: Sequence[SiteView]
    ) -> Optional[str]:
        """Legacy static semantics: every job vs the full deadline."""
        return self._choose(candidates, self.safety_margin * self.deadline_s)

    def choose_site_ctx(
        self, job_id: str, candidates: Sequence[SiteView], ctx: dict
    ) -> Optional[str]:
        if not self.dag_deadline or not ctx:
            return self.choose_site(job_id, candidates)
        elapsed = max(0.0, ctx["now"] - ctx.get("received_at", ctx["now"]))
        remaining = self.deadline_s - elapsed
        levels = max(1, int(ctx.get("remaining_levels", 1)))
        # remaining <= 0: the DAG already blew its deadline — the budget
        # goes to 0, no site is "feasible", and _choose degrades every
        # remaining job to the finish-ASAP argmin.
        budget = self.safety_margin * max(0.0, remaining) / levels
        return self._choose(candidates, budget)

    def _choose(
        self, candidates: Sequence[SiteView], budget_s: float
    ) -> Optional[str]:
        if not candidates:
            return None
        unsampled = [v for v in candidates if v.avg_completion_s is None]
        if unsampled:
            choice = unsampled[self._bootstrap_cursor % len(unsampled)].name
            self._advance("bootstrap")
            return choice

        def predicted(v: SiteView) -> float:
            if v.predicted_completion_s is not None:
                return v.predicted_completion_s
            return v.avg_completion_s  # type: ignore[return-value]

        feasible = [v for v in candidates if predicted(v) <= budget_s]
        if feasible:
            choice = feasible[self._spread_cursor % len(feasible)].name
            self._advance("spread")
            return choice
        return self._argmin(candidates, predicted)
