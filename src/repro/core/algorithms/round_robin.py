"""Round-robin site selection.

"Round robin scheduling algorithm tries to submit jobs in the order of
sites in a given list.  All sites are scheduled to execute jobs without
considering the status of the sites."  This is the paper's baseline —
what a grid user throttling jobs by hand effectively does.

The cursor advances over the *feasible* list each call, so with
feedback enabled the rotation silently skips sites the reliability
filter removed (the paper's "planned onto the next site in the list").
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.algorithms.base import SchedulingAlgorithm, SiteView

__all__ = ["RoundRobin"]


class RoundRobin(SchedulingAlgorithm):
    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose_site(
        self, job_id: str, candidates: Sequence[SiteView]
    ) -> Optional[str]:
        if not candidates:
            return None
        choice = candidates[self._cursor % len(candidates)].name
        self._cursor += 1
        return choice
