"""The scheduling finite-state automaton (paper §3.2).

"SPHINX adapts finite automaton for scheduling status management.  The
scheduler moves a DAG through predefined states to complete resource
allocation to the jobs in the DAG."  Each server module owns one or two
transitions; the control process wakes the module responsible for
whatever state an entity is in.

DAG automaton::

    RECEIVED -> REDUCING -> REDUCED -> RUNNING -> FINISHED

Job automaton::

    UNPLANNED -> READY -> PLANNED -> SUBMITTED -> FINISHED
        ^                    |           |            |
        |  (replan after     v           v            | (output lost:
        +---- cancel) --- CANCELLED <----+------------+  re-derive)
    (REMOVED: eliminated by the DAG reducer, terminal)

FINISHED is *almost* terminal: when a finished job's output loses its
last live replica (the site holding it died for good), the virtual-data
model says the file can simply be re-derived — the server reverts the
producer to CANCELLED and replans it.

Transitions are validated: an illegal move raises
:class:`IllegalTransitionError`, which in a scheduler is always a logic
bug worth failing loudly on.
"""

from __future__ import annotations

import enum

__all__ = ["DagState", "JobState", "IllegalTransitionError"]


class IllegalTransitionError(RuntimeError):
    """An entity was asked to move along an edge the automaton lacks."""


class DagState(enum.Enum):
    RECEIVED = "received"    # arrived from a client, not yet examined
    REDUCING = "reducing"    # DAG reducer checking the replica catalog
    REDUCED = "reduced"      # reduction done; ready for planning
    RUNNING = "running"      # jobs being planned/executed
    FINISHED = "finished"    # every job finished (or removed)

    @property
    def terminal(self) -> bool:
        return self is DagState.FINISHED


_DAG_EDGES = {
    DagState.RECEIVED: {DagState.REDUCING},
    DagState.REDUCING: {DagState.REDUCED, DagState.FINISHED},
    DagState.REDUCED: {DagState.RUNNING},
    DagState.RUNNING: {DagState.FINISHED},
    DagState.FINISHED: set(),
}


class JobState(enum.Enum):
    UNPLANNED = "unplanned"  # waiting for input availability
    READY = "ready"          # inputs available; awaiting a site decision
    PLANNED = "planned"      # site chosen; plan sent to the client
    SUBMITTED = "submitted"  # client staged data and handed to Condor-G
    FINISHED = "finished"    # completed; outputs registered
    CANCELLED = "cancelled"  # failed / timed out; awaiting replan
    REMOVED = "removed"      # eliminated by the DAG reducer

    @property
    def terminal(self) -> bool:
        """Done for dependency purposes (a FINISHED job may still be
        re-derived later if its output is lost)."""
        return self in (JobState.FINISHED, JobState.REMOVED)

    @property
    def active(self) -> bool:
        """Counts toward a site's SPHINX-local load (eqs. 1-2)."""
        return self in (JobState.PLANNED, JobState.SUBMITTED)


_JOB_EDGES = {
    JobState.UNPLANNED: {JobState.READY, JobState.REMOVED},
    JobState.READY: {JobState.PLANNED},
    JobState.PLANNED: {JobState.SUBMITTED, JobState.CANCELLED,
                       JobState.FINISHED},
    JobState.SUBMITTED: {JobState.FINISHED, JobState.CANCELLED},
    JobState.CANCELLED: {JobState.READY},
    JobState.FINISHED: {JobState.CANCELLED},  # lost output: re-derive
    JobState.REMOVED: {JobState.CANCELLED},   # reduced away, then lost
}


def check_dag_transition(old: DagState, new: DagState) -> None:
    if new not in _DAG_EDGES[old]:
        raise IllegalTransitionError(f"dag cannot move {old.value} -> {new.value}")


def check_job_transition(old: JobState, new: JobState) -> None:
    if new not in _JOB_EDGES[old]:
        raise IllegalTransitionError(f"job cannot move {old.value} -> {new.value}")
