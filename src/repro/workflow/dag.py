"""Abstract DAGs of jobs with file-implied dependencies.

A :class:`Job` declares the logical files it reads and writes plus a
nominal compute demand.  A :class:`Dag` collects jobs and derives the
precedence graph: job B depends on job A iff B reads a file A writes.
This mirrors Chimera's abstract plans, where edges are not stated but
implied by virtual-data I/O.

The DAG also carries per-job resource requirements used by the policy
engine (eq. 4 of the paper): CPU-seconds and disk quota demands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Optional

from repro.workflow.files import LogicalFile

__all__ = ["Job", "Dag", "DagValidationError"]


class DagValidationError(ValueError):
    """Raised when a DAG is structurally invalid (cycle, duplicate id...)."""


@dataclass(slots=True)
class Job:
    """One schedulable unit of work inside a DAG.

    ``runtime_s`` is the *nominal* compute time on a reference CPU; real
    execution time depends on the site's performance factor and load.
    ``requirements`` maps resource names (``"cpu_seconds"``, ``"disk_mb"``)
    to the amount a site must grant under the user's quota.
    """

    job_id: str
    inputs: tuple[LogicalFile, ...] = ()
    outputs: tuple[LogicalFile, ...] = ()
    runtime_s: float = 60.0
    executable: str = "generic-app"
    requirements: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.runtime_s <= 0:
            raise ValueError(f"runtime must be > 0, got {self.runtime_s}")
        self.inputs = tuple(self.inputs)
        self.outputs = tuple(self.outputs)
        produced = {f.lfn for f in self.outputs}
        if len(produced) != len(self.outputs):
            raise ValueError(f"job {self.job_id} writes a file twice")
        overlap = produced & {f.lfn for f in self.inputs}
        if overlap:
            raise ValueError(
                f"job {self.job_id} both reads and writes {sorted(overlap)}"
            )

    @property
    def output_size_mb(self) -> float:
        return sum(f.size_mb for f in self.outputs)

    @property
    def input_size_mb(self) -> float:
        return sum(f.size_mb for f in self.inputs)


class Dag:
    """A directed acyclic graph of jobs with file-implied edges.

    Construction validates: unique job ids, single writer per file, and
    acyclicity.  Dependency queries are O(1) after construction.
    """

    def __init__(self, dag_id: str, jobs: Iterable[Job]):
        if not dag_id:
            raise DagValidationError("dag_id must be non-empty")
        self.dag_id = dag_id
        self._jobs: dict[str, Job] = {}
        for job in jobs:
            if job.job_id in self._jobs:
                raise DagValidationError(
                    f"duplicate job id {job.job_id!r} in dag {dag_id!r}"
                )
            self._jobs[job.job_id] = job

        # Map each produced file to its (single) producer.
        self._producer: dict[str, str] = {}
        for job in self._jobs.values():
            for f in job.outputs:
                if f.lfn in self._producer:
                    raise DagValidationError(
                        f"file {f.lfn!r} written by both "
                        f"{self._producer[f.lfn]!r} and {job.job_id!r}"
                    )
                self._producer[f.lfn] = job.job_id

        # Derive edges: parent -> child when child reads parent's output.
        self._parents: dict[str, tuple[str, ...]] = {}
        self._children: dict[str, list[str]] = {jid: [] for jid in self._jobs}
        for job in self._jobs.values():
            parents = []
            for f in job.inputs:
                producer = self._producer.get(f.lfn)
                if producer is not None and producer != job.job_id:
                    parents.append(producer)
            # Deduplicate preserving insertion order for determinism.
            seen: dict[str, None] = dict.fromkeys(parents)
            self._parents[job.job_id] = tuple(seen)
            for p in seen:
                self._children[p].append(job.job_id)

        self._order = self._toposort()

    # -- basic accessors ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    def __iter__(self) -> Iterator[Job]:
        """Iterate jobs in a deterministic topological order."""
        return (self._jobs[jid] for jid in self._order)

    @property
    def job_ids(self) -> tuple[str, ...]:
        """All job ids in topological order."""
        return self._order

    def job(self, job_id: str) -> Job:
        return self._jobs[job_id]

    def parents(self, job_id: str) -> tuple[str, ...]:
        """Jobs whose outputs this job reads."""
        return self._parents[job_id]

    def children(self, job_id: str) -> tuple[str, ...]:
        """Jobs that read this job's outputs."""
        return tuple(self._children[job_id])

    def producer_of(self, lfn: str) -> Optional[str]:
        """The job id that writes ``lfn``, or None for external inputs."""
        return self._producer.get(lfn)

    @property
    def external_inputs(self) -> tuple[LogicalFile, ...]:
        """Files read by some job but produced by none (must pre-exist)."""
        seen: dict[str, LogicalFile] = {}
        for jid in self._order:
            for f in self._jobs[jid].inputs:
                if f.lfn not in self._producer and f.lfn not in seen:
                    seen[f.lfn] = f
        return tuple(seen.values())

    @property
    def all_outputs(self) -> tuple[LogicalFile, ...]:
        """Every file produced by some job, in topological producer order."""
        out: list[LogicalFile] = []
        for jid in self._order:
            out.extend(self._jobs[jid].outputs)
        return tuple(out)

    @property
    def roots(self) -> tuple[str, ...]:
        """Jobs with no in-DAG parents."""
        return tuple(jid for jid in self._order if not self._parents[jid])

    @property
    def leaves(self) -> tuple[str, ...]:
        """Jobs with no in-DAG children."""
        return tuple(jid for jid in self._order if not self._children[jid])

    # -- scheduling-facing queries ------------------------------------------
    def ready_jobs(self, completed: Iterable[str]) -> tuple[str, ...]:
        """Jobs whose parents have all completed and that are not done.

        This is the planner's "choose a set of jobs that are ready for
        execution according to the input data availability" step.
        """
        done = set(completed)
        unknown = done - set(self._jobs)
        if unknown:
            raise KeyError(f"unknown completed job ids: {sorted(unknown)}")
        return tuple(
            jid
            for jid in self._order
            if jid not in done and all(p in done for p in self._parents[jid])
        )

    def descendants(self, job_id: str) -> tuple[str, ...]:
        """All jobs reachable from ``job_id`` (excluding itself)."""
        seen: dict[str, None] = {}
        stack = list(self._children[job_id])
        while stack:
            jid = stack.pop(0)
            if jid in seen:
                continue
            seen[jid] = None
            stack.extend(self._children[jid])
        return tuple(jid for jid in self._order if jid in seen)

    def ancestors(self, job_id: str) -> tuple[str, ...]:
        """All jobs ``job_id`` transitively depends on."""
        seen: dict[str, None] = {}
        stack = list(self._parents[job_id])
        while stack:
            jid = stack.pop(0)
            if jid in seen:
                continue
            seen[jid] = None
            stack.extend(self._parents[jid])
        return tuple(jid for jid in self._order if jid in seen)

    def without(self, job_ids: Iterable[str]) -> "Dag":
        """A new DAG with the given jobs removed (used by the DAG reducer).

        Removing a job whose descendants remain is allowed only when every
        remaining reader's input is satisfiable externally — the reducer
        guarantees this by only removing jobs whose outputs already exist
        in the replica catalog.
        """
        drop = set(job_ids)
        unknown = drop - set(self._jobs)
        if unknown:
            raise KeyError(f"unknown job ids: {sorted(unknown)}")
        remaining = [self._jobs[jid] for jid in self._order if jid not in drop]
        return Dag(self.dag_id, remaining)

    # -- internals -----------------------------------------------------------
    def _toposort(self) -> tuple[str, ...]:
        """Kahn's algorithm with deterministic (insertion-order) ties."""
        indeg = {jid: len(self._parents[jid]) for jid in self._jobs}
        queue = [jid for jid in self._jobs if indeg[jid] == 0]
        order: list[str] = []
        while queue:
            jid = queue.pop(0)
            order.append(jid)
            for child in self._children[jid]:
                indeg[child] -= 1
                if indeg[child] == 0:
                    queue.append(child)
        if len(order) != len(self._jobs):
            cyclic = sorted(jid for jid, d in indeg.items() if d > 0)
            raise DagValidationError(
                f"dag {self.dag_id!r} contains a cycle through {cyclic}"
            )
        return tuple(order)

    @property
    def critical_path_s(self) -> float:
        """Length of the longest chain of nominal runtimes.

        A lower bound on DAG completion time on infinite resources; used
        by experiment metrics for normalization.
        """
        longest: dict[str, float] = {}
        for jid in self._order:
            base = max(
                (longest[p] for p in self._parents[jid]), default=0.0
            )
            longest[jid] = base + self._jobs[jid].runtime_s
        return max(longest.values(), default=0.0)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Dag({self.dag_id!r}, jobs={len(self._jobs)})"
