"""Structural statistics over DAGs and workloads.

Used by the experiment reports to characterize generated workloads the
way the paper describes its own ("10 jobs in random structure"), and by
downstream users to sanity-check their campaigns before submission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.workflow.dag import Dag

__all__ = ["DagShape", "dag_shape", "workload_summary"]


@dataclass(frozen=True, slots=True)
class DagShape:
    """Structural profile of one DAG."""

    dag_id: str
    n_jobs: int
    n_edges: int
    depth: int               # longest chain (in jobs)
    width: int               # widest antichain level
    n_roots: int
    n_leaves: int
    total_compute_s: float
    critical_path_s: float
    external_input_mb: float
    total_output_mb: float

    @property
    def parallelism(self) -> float:
        """Ideal speedup: total work / critical path."""
        if self.critical_path_s == 0:
            return 1.0
        return self.total_compute_s / self.critical_path_s


def dag_shape(dag: Dag) -> DagShape:
    """Compute the structural profile of ``dag``."""
    level: dict[str, int] = {}
    for jid in dag.job_ids:
        parents = dag.parents(jid)
        level[jid] = 1 + max((level[p] for p in parents), default=-1)
    depth = max(level.values(), default=-1) + 1
    width = 0
    if level:
        counts = np.bincount(np.array(list(level.values())))
        width = int(counts.max())
    n_edges = sum(len(dag.parents(jid)) for jid in dag.job_ids)
    return DagShape(
        dag_id=dag.dag_id,
        n_jobs=len(dag),
        n_edges=n_edges,
        depth=depth,
        width=width,
        n_roots=len(dag.roots),
        n_leaves=len(dag.leaves),
        total_compute_s=sum(j.runtime_s for j in dag),
        critical_path_s=dag.critical_path_s,
        external_input_mb=sum(f.size_mb for f in dag.external_inputs),
        total_output_mb=sum(f.size_mb for f in dag.all_outputs),
    )


def workload_summary(dags: Iterable[Dag]) -> dict[str, float]:
    """Aggregate statistics over a workload (means unless noted)."""
    shapes = [dag_shape(d) for d in dags]
    if not shapes:
        raise ValueError("empty workload")
    return {
        "n_dags": len(shapes),
        "total_jobs": sum(s.n_jobs for s in shapes),
        "mean_depth": float(np.mean([s.depth for s in shapes])),
        "mean_width": float(np.mean([s.width for s in shapes])),
        "mean_edges": float(np.mean([s.n_edges for s in shapes])),
        "mean_parallelism": float(np.mean([s.parallelism for s in shapes])),
        "mean_compute_s": float(np.mean([s.total_compute_s for s in shapes])),
        "mean_critical_path_s": float(
            np.mean([s.critical_path_s for s in shapes])
        ),
        "total_data_mb": float(
            sum(s.external_input_mb + s.total_output_mb for s in shapes)
        ),
    }
