"""Logical file model.

Grid data management distinguishes *logical* file names (LFNs — stable,
catalog-level identifiers) from *physical* file names (PFNs — a concrete
replica at a concrete site).  The workflow layer deals exclusively in
LFNs; the replica location service (:mod:`repro.services.rls`) maps LFNs
to the sites that hold replicas.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LogicalFile"]


@dataclass(frozen=True, slots=True)
class LogicalFile:
    """A logical file name plus the size used for transfer planning.

    Instances are immutable and hashable so they can key replica-catalog
    and dependency-graph structures.  Equality is by LFN only: two
    references to the same LFN are the same file even if a stale size
    estimate differs.
    """

    lfn: str
    size_mb: float = 0.0

    def __post_init__(self) -> None:
        if not self.lfn:
            raise ValueError("logical file name must be non-empty")
        if self.size_mb < 0:
            raise ValueError(f"file size must be >= 0, got {self.size_mb}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogicalFile):
            return NotImplemented
        return self.lfn == other.lfn

    def __hash__(self) -> int:
        return hash(self.lfn)

    def __str__(self) -> str:
        return self.lfn
