"""A miniature virtual-data language (Chimera's VDL, scaled down).

Chimera lets physicists declare *transformations* (parameterized program
templates) and *derivations* (concrete invocations wiring logical files
to a transformation's formal parameters), then compiles the derivation
catalog into an abstract DAG.  This module reproduces that front end so
the examples can build workloads the way a Grid3 user would have:

    catalog = VdlCatalog()
    catalog.define_transformation("reco", inputs=["raw"], outputs=["rec"],
                                  runtime_s=120)
    catalog.add_derivation("reco", bindings={"raw": "run17.raw",
                                             "rec": "run17.rec"})
    dag = catalog.compile("run17")

Only the structure relevant to scheduling is modelled; VDL's typing and
provenance-query machinery is out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.workflow.dag import Dag, Job
from repro.workflow.files import LogicalFile

__all__ = ["VdlCatalog", "VdlError", "Transformation", "Derivation"]


class VdlError(ValueError):
    """Raised for malformed transformations/derivations."""


@dataclass(frozen=True, slots=True)
class Transformation:
    """A parameterized program template: formal input/output names."""

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    runtime_s: float = 60.0
    executable: str = "generic-app"
    requirements: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise VdlError("transformation name must be non-empty")
        if not self.outputs:
            raise VdlError(f"transformation {self.name!r} produces nothing")
        formals = list(self.inputs) + list(self.outputs)
        if len(set(formals)) != len(formals):
            raise VdlError(
                f"transformation {self.name!r} has duplicate formal parameters"
            )


@dataclass(frozen=True, slots=True)
class Derivation:
    """A concrete invocation: formal parameter -> logical file name."""

    derivation_id: str
    transformation: str
    bindings: Mapping[str, str]
    file_sizes_mb: Mapping[str, float] = field(default_factory=dict)


class VdlCatalog:
    """Holds transformations and derivations; compiles them to a Dag."""

    def __init__(self) -> None:
        self._transformations: dict[str, Transformation] = {}
        self._derivations: list[Derivation] = []

    # -- declaration -----------------------------------------------------------
    def define_transformation(
        self,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        runtime_s: float = 60.0,
        executable: str = "generic-app",
        requirements: Mapping[str, float] | None = None,
    ) -> Transformation:
        if name in self._transformations:
            raise VdlError(f"transformation {name!r} already defined")
        tr = Transformation(
            name=name,
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            runtime_s=runtime_s,
            executable=executable,
            requirements=dict(requirements or {}),
        )
        self._transformations[name] = tr
        return tr

    def add_derivation(
        self,
        transformation: str,
        bindings: Mapping[str, str],
        derivation_id: str | None = None,
        file_sizes_mb: Mapping[str, float] | None = None,
    ) -> Derivation:
        tr = self._transformations.get(transformation)
        if tr is None:
            raise VdlError(f"unknown transformation {transformation!r}")
        formals = set(tr.inputs) | set(tr.outputs)
        missing = formals - set(bindings)
        if missing:
            raise VdlError(
                f"derivation of {transformation!r} missing bindings for "
                f"{sorted(missing)}"
            )
        extra = set(bindings) - formals
        if extra:
            raise VdlError(
                f"derivation of {transformation!r} binds unknown formals "
                f"{sorted(extra)}"
            )
        did = derivation_id or f"{transformation}.d{len(self._derivations):03d}"
        d = Derivation(
            derivation_id=did,
            transformation=transformation,
            bindings=dict(bindings),
            file_sizes_mb=dict(file_sizes_mb or {}),
        )
        self._derivations.append(d)
        return d

    # -- compilation -------------------------------------------------------------
    def compile(self, dag_id: str) -> Dag:
        """Compile the derivation catalog into an abstract DAG.

        Edges emerge from shared logical files exactly as in
        :class:`~repro.workflow.dag.Dag` — no explicit wiring needed.
        """
        if not self._derivations:
            raise VdlError("catalog has no derivations to compile")
        jobs = []
        for d in self._derivations:
            tr = self._transformations[d.transformation]
            inputs = tuple(
                LogicalFile(d.bindings[f], d.file_sizes_mb.get(d.bindings[f], 0.0))
                for f in tr.inputs
            )
            outputs = tuple(
                LogicalFile(d.bindings[f], d.file_sizes_mb.get(d.bindings[f], 0.0))
                for f in tr.outputs
            )
            jobs.append(
                Job(
                    job_id=d.derivation_id,
                    inputs=inputs,
                    outputs=outputs,
                    runtime_s=tr.runtime_s,
                    executable=tr.executable,
                    requirements=dict(tr.requirements),
                )
            )
        return Dag(dag_id, jobs)

    @property
    def transformations(self) -> tuple[Transformation, ...]:
        return tuple(self._transformations.values())

    @property
    def derivations(self) -> tuple[Derivation, ...]:
        return tuple(self._derivations)
