"""Random workload generation matching the paper's evaluation.

Paper §4.2/4.3 workload unit:

* DAGs of **10 jobs in random structure**,
* each job reads **two or three input files** and "spends one minute
  before generating an output file",
* output sizes differ per job,
* load ramped across experiments: **30, 60, 120 DAGs**.

:class:`WorkloadGenerator` reproduces that: every generated DAG has
``jobs_per_dag`` jobs; each non-root job draws 2-3 inputs from earlier
jobs' outputs (falling back to external, pre-staged files), and each job
writes one output of log-normally distributed size.

The generator also supports the paper's stated *future work* — mixed,
heterogeneous job lengths — through ``runtime_cv`` and
``runtime_classes`` (used by the ablation benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.workflow.dag import Dag, Job
from repro.workflow.files import LogicalFile

__all__ = ["WorkloadSpec", "WorkloadGenerator"]


@dataclass(slots=True)
class WorkloadSpec:
    """Parameters of one generated workload."""

    n_dags: int = 30
    jobs_per_dag: int = 10
    #: nominal per-job compute seconds (paper: "one minute").
    runtime_s: float = 60.0
    #: coefficient of variation of job runtimes; 0 = identical jobs, the
    #: paper's setting ("the workload are identical in the current
    #: experiments").
    runtime_cv: float = 0.0
    #: optional mixture of (runtime_s, weight) classes for heterogeneous
    #: workloads (the paper's future-work extension).  Overrides
    #: runtime_s/runtime_cv when given.
    runtime_classes: Optional[Sequence[tuple[float, float]]] = None
    #: inputs per non-root job: uniform in [min_inputs, max_inputs].
    min_inputs: int = 2
    max_inputs: int = 3
    #: median output size and dispersion (log-normal), "the size of the
    #: output file is different for each job".  Sized so a job's
    #: transfers cost tens of seconds on Grid3-class uplinks — the
    #: paper's "three or four minutes" per job *including* transfers —
    #: without making the WAN the binding constraint at 120-DAG load.
    output_size_mb_median: float = 30.0
    output_size_sigma: float = 0.6
    #: size of pre-existing external input files.
    external_size_mb: float = 60.0
    #: per-job quota demands used by policy-constrained experiments.
    requirements: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_dags < 1 or self.jobs_per_dag < 1:
            raise ValueError("workload must contain at least one dag and job")
        if not (1 <= self.min_inputs <= self.max_inputs):
            raise ValueError("need 1 <= min_inputs <= max_inputs")
        if self.runtime_s <= 0 or self.runtime_cv < 0:
            raise ValueError("invalid runtime parameters")


class WorkloadGenerator:
    """Generates the paper's random-structure DAG workloads.

    Structure model: jobs are created in sequence; job *k* (k>0) picks
    each of its 2-3 inputs either from the outputs of jobs 0..k-1 (with
    probability ``p_internal``) or from an external pre-staged file.
    This yields connected, layered random DAGs like Chimera's HEP
    pipelines while guaranteeing acyclicity by construction.
    """

    def __init__(self, rng: np.random.Generator, p_internal: float = 0.7):
        if not 0.0 <= p_internal <= 1.0:
            raise ValueError(f"p_internal must be in [0, 1], got {p_internal}")
        self._rng = rng
        self._p_internal = p_internal

    # -- public API -----------------------------------------------------------
    def generate(self, spec: WorkloadSpec, name_prefix: str = "dag") -> list[Dag]:
        """All DAGs of the workload, ids ``{prefix}-0000`` onward."""
        return [
            self.generate_dag(spec, f"{name_prefix}-{i:04d}")
            for i in range(spec.n_dags)
        ]

    def generate_dag(self, spec: WorkloadSpec, dag_id: str) -> Dag:
        """One random-structure DAG per the workload spec."""
        rng = self._rng
        jobs: list[Job] = []
        available_outputs: list[LogicalFile] = []

        for k in range(spec.jobs_per_dag):
            job_id = f"{dag_id}.j{k:03d}"
            n_inputs = int(rng.integers(spec.min_inputs, spec.max_inputs + 1))
            inputs: list[LogicalFile] = []
            chosen: set[str] = set()
            for _ in range(n_inputs):
                use_internal = (
                    available_outputs
                    and rng.random() < self._p_internal
                )
                if use_internal:
                    candidates = [
                        f for f in available_outputs if f.lfn not in chosen
                    ]
                    if candidates:
                        idx = int(rng.integers(len(candidates)))
                        f = candidates[idx]
                        inputs.append(f)
                        chosen.add(f.lfn)
                        continue
                ext = LogicalFile(
                    f"{dag_id}.ext{k:03d}.{len(inputs)}",
                    size_mb=spec.external_size_mb,
                )
                inputs.append(ext)
                chosen.add(ext.lfn)

            out_size = float(
                spec.output_size_mb_median
                * np.exp(rng.normal(0.0, spec.output_size_sigma))
            )
            output = LogicalFile(f"{job_id}.out", size_mb=out_size)
            runtime = self._draw_runtime(spec)
            jobs.append(
                Job(
                    job_id=job_id,
                    inputs=tuple(inputs),
                    outputs=(output,),
                    runtime_s=runtime,
                    executable="sphinx-sim-app",
                    requirements=dict(spec.requirements),
                )
            )
            available_outputs.append(output)

        return Dag(dag_id, jobs)

    # -- internals -------------------------------------------------------------
    def _draw_runtime(self, spec: WorkloadSpec) -> float:
        rng = self._rng
        if spec.runtime_classes:
            runtimes = np.array([r for r, _w in spec.runtime_classes])
            weights = np.array([w for _r, w in spec.runtime_classes], dtype=float)
            weights /= weights.sum()
            return float(runtimes[rng.choice(len(runtimes), p=weights)])
        if spec.runtime_cv == 0.0:
            return spec.runtime_s
        # Log-normal with the requested mean and coefficient of variation.
        cv2 = spec.runtime_cv**2
        sigma = np.sqrt(np.log1p(cv2))
        mu = np.log(spec.runtime_s) - sigma**2 / 2
        return float(np.exp(rng.normal(mu, sigma)))
