"""Workflow substrate — the Chimera virtual-data-system equivalent.

The paper's SPHINX receives *abstract DAGs* produced by the Chimera
Virtual Data System: groups of jobs whose edges are implied by logical
file I/O dependencies.  This package provides:

* :mod:`repro.workflow.files` — logical/physical file model,
* :mod:`repro.workflow.dag` — jobs, DAGs, dependency analysis, validation,
* :mod:`repro.workflow.generator` — the paper's random workloads
  (10-job random-structure DAGs; 2-3 inputs, ~1 minute compute, sized
  output per job),
* :mod:`repro.workflow.vdl` — a miniature virtual-data language for
  declaring transformations/derivations and compiling them to a DAG.
"""

from repro.workflow.files import LogicalFile
from repro.workflow.dag import Dag, DagValidationError, Job
from repro.workflow.generator import WorkloadGenerator, WorkloadSpec
from repro.workflow.vdl import VdlCatalog, VdlError

__all__ = [
    "Dag",
    "DagValidationError",
    "Job",
    "LogicalFile",
    "VdlCatalog",
    "VdlError",
    "WorkloadGenerator",
    "WorkloadSpec",
]
