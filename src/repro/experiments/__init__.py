"""Evaluation harness — regenerates every table and figure of the paper.

* :mod:`repro.experiments.scenarios` — scenario/server specifications
  and the default Grid3 fault script,
* :mod:`repro.experiments.runner` — assembles the full stack (grid +
  services + N concurrent SPHINX servers competing for the same
  resources, the paper's pair/group-wise protocol) and runs it,
* :mod:`repro.experiments.metrics` — per-server result extraction,
* :mod:`repro.experiments.figures` — one driver per paper figure,
* :mod:`repro.experiments.parallel` — the process-pool suite runner
  behind ``repro suite`` and BENCH_SUITE.json,
* :mod:`repro.experiments.report` — plain-text tables for the bench
  harness and EXPERIMENTS.md.
"""

from repro.experiments.scenarios import (
    ControlPlaneMode,
    Scenario,
    ServerSpec,
    default_fault_windows,
)
from repro.experiments.runner import ExperimentResult, ServerResult, run_scenario
from repro.experiments.figures import (
    ext_eviction,
    ext_eviction_scenario,
    ext_reservation,
    ext_reservation_scenario,
    ext_scale,
    ext_scale_scenario,
    fig2_feedback,
    fig3_algorithms,
    fig5_pairwise,
    fig6_site_distribution,
    fig7_policy,
    fig8_timeouts,
)
from repro.experiments.parallel import (
    SuiteCase,
    SuiteRun,
    default_suite,
    eviction_counts,
    eviction_suite,
    federation_suite,
    headline_metrics,
    preemption_loss_percentiles,
    run_suite,
    scale_suite,
    shard_latency_percentiles,
    suite_payload,
)
from repro.experiments.report import format_table

__all__ = [
    "ControlPlaneMode",
    "ExperimentResult",
    "Scenario",
    "ServerResult",
    "ServerSpec",
    "SuiteCase",
    "SuiteRun",
    "default_fault_windows",
    "default_suite",
    "eviction_counts",
    "eviction_suite",
    "ext_eviction",
    "ext_eviction_scenario",
    "ext_reservation",
    "ext_reservation_scenario",
    "ext_scale",
    "ext_scale_scenario",
    "fig2_feedback",
    "fig3_algorithms",
    "fig5_pairwise",
    "fig6_site_distribution",
    "fig7_policy",
    "federation_suite",
    "fig8_timeouts",
    "format_table",
    "headline_metrics",
    "preemption_loss_percentiles",
    "shard_latency_percentiles",
    "run_scenario",
    "run_suite",
    "scale_suite",
    "suite_payload",
]
