"""Per-figure experiment drivers.

Each figure has two layers:

* a **scenario builder** (``fig*_scenario``) returning the plain
  :class:`Scenario` the paper figure used — picklable, so the suite
  runner (:mod:`repro.experiments.parallel`) can ship it to a worker
  process;
* a **driver** (the original ``fig*`` function) that runs the scenario
  and returns the raw :class:`ExperimentResult` plus any derived
  series.

``n_dags`` defaults to the paper's value but is a parameter so tests
and quick benchmarks can run scaled-down versions with the same shape.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.metrics import rank_correlation, site_distribution_table
from repro.experiments.runner import ExperimentResult, run_scenario
from repro.experiments.scenarios import (
    ControlPlaneMode,
    Scenario,
    ServerSpec,
)

__all__ = [
    "fig2_feedback",
    "fig2_scenario",
    "fig3_algorithms",
    "fig345_scenario",
    "fig5_pairwise",
    "fig5_pair_scenario",
    "fig6_site_distribution",
    "fig6_scenario",
    "fig6_tables",
    "fig7_policy",
    "fig7_scenario",
    "fig8_timeouts",
    "fig8_scenario",
    "ext_reservation",
    "ext_reservation_scenario",
    "ext_scale",
    "ext_scale_scenario",
    "ext_eviction",
    "ext_eviction_scenario",
    "ALGORITHM_LINEUP",
]

#: The paper's four-way comparison, with feedback (Figs. 3-5, 7).
ALGORITHM_LINEUP: tuple[ServerSpec, ...] = (
    ServerSpec("completion-time", "completion-time"),
    ServerSpec("queue-length", "queue-length"),
    ServerSpec("num-cpus", "num-cpus"),
    ServerSpec("round-robin", "round-robin"),
)


# -- scenario builders ----------------------------------------------------------
def fig2_scenario(n_dags: int = 30, seed: int = 42,
                  horizon_s: float = 24 * 3600.0,
                  control_plane: str = ControlPlaneMode.PUSH) -> Scenario:
    """Fig. 2: round-robin and #CPUs, each with and without feedback."""
    return Scenario(
        name=f"fig2-{n_dags}dags",
        servers=(
            ServerSpec("round-robin+fb", "round-robin", use_feedback=True),
            ServerSpec("round-robin-nofb", "round-robin", use_feedback=False),
            ServerSpec("num-cpus+fb", "num-cpus", use_feedback=True),
            ServerSpec("num-cpus-nofb", "num-cpus", use_feedback=False),
        ),
        n_dags=n_dags,
        seed=seed,
        horizon_s=horizon_s,
        control_plane=control_plane,
    )


def fig345_scenario(n_dags: int = 30, seed: int = 42,
                    horizon_s: float = 24 * 3600.0,
                    control_plane: str = ControlPlaneMode.PUSH) -> Scenario:
    """Figs. 3 (30 DAGs), 4 (60), 5 (120): the four-way comparison."""
    return Scenario(
        name=f"fig345-{n_dags}dags",
        servers=ALGORITHM_LINEUP,
        n_dags=n_dags,
        seed=seed,
        horizon_s=horizon_s,
        control_plane=control_plane,
    )


def fig5_pair_scenario(rival: str, n_dags: int = 120, seed: int = 42,
                       horizon_s: float = 36 * 3600.0,
                       control_plane: str = ControlPlaneMode.PUSH,
                       ) -> Scenario:
    """One pair-wise Fig. 5 run: the hybrid vs one rival algorithm."""
    return Scenario(
        name=f"fig5-pair-{rival}-{n_dags}dags",
        servers=(
            ServerSpec("completion-time", "completion-time"),
            ServerSpec(rival, rival),
        ),
        n_dags=n_dags,
        seed=seed,
        horizon_s=horizon_s,
        control_plane=control_plane,
    )


def fig6_scenario(n_dags: int = 120, seed: int = 42,
                  horizon_s: float = 24 * 3600.0,
                  control_plane: str = ControlPlaneMode.PUSH) -> Scenario:
    """Fig. 6: completion-time vs #CPUs for the site-distribution plot."""
    return Scenario(
        name=f"fig6-{n_dags}dags",
        servers=(
            ServerSpec("completion-time", "completion-time"),
            ServerSpec("num-cpus", "num-cpus"),
        ),
        n_dags=n_dags,
        seed=seed,
        horizon_s=horizon_s,
        control_plane=control_plane,
    )


def fig7_scenario(n_dags: int = 120, seed: int = 42,
                  horizon_s: float = 24 * 3600.0,
                  cpu_quota_s: Optional[float] = None,
                  control_plane: str = ControlPlaneMode.PUSH) -> Scenario:
    """Fig. 7: the four-way comparison under per-user usage quotas."""
    if cpu_quota_s is None:
        # Each job needs 60 CPU-seconds; a site may take at most 15% of
        # one user's total demand, so the quota genuinely forces the
        # scheduler to spread (no site can absorb more than 180 of a
        # 1200-job campaign).
        cpu_quota_s = 0.15 * n_dags * 10 * 60.0
    return Scenario(
        name=f"fig7-{n_dags}dags",
        servers=ALGORITHM_LINEUP,
        n_dags=n_dags,
        seed=seed,
        horizon_s=horizon_s,
        control_plane=control_plane,
        job_requirements={"cpu_seconds": 60.0},
        quota_per_site={"cpu_seconds": cpu_quota_s},
    )


def fig8_scenario(n_dags: int = 120, seed: int = 42,
                  horizon_s: float = 24 * 3600.0,
                  control_plane: str = ControlPlaneMode.PUSH) -> Scenario:
    """Fig. 8: the four-way lineup plus #CPUs without feedback."""
    return Scenario(
        name=f"fig8-{n_dags}dags",
        servers=ALGORITHM_LINEUP + (
            ServerSpec("num-cpus-nofb", "num-cpus", use_feedback=False),
        ),
        n_dags=n_dags,
        seed=seed,
        horizon_s=horizon_s,
        control_plane=control_plane,
    )


def ext_reservation_scenario(n_dags: int = 30, seed: int = 42,
                             horizon_s: float = 24 * 3600.0,
                             control_plane: str = ControlPlaneMode.PUSH,
                             ) -> Scenario:
    """Extension: reactive feedback vs proactive stage reservations.

    Two completion-time servers compete under the standard Grid3 fault
    script; the ``reservation`` variant additionally books site slots
    ahead for downstream DAG stages (EASY-backfilled advance
    reservations), while ``reactive`` relies purely on feedback after
    the fact.  The interesting series: finished DAGs, average DAG
    completion, and the reservation/backfill counters in the obs
    metrics snapshot.
    """
    return Scenario(
        name=f"ext-reservation-{n_dags}dags",
        servers=(
            ServerSpec("reactive", "completion-time"),
            ServerSpec("reservation", "completion-time",
                       reserve_ahead=True),
        ),
        n_dags=n_dags,
        seed=seed,
        horizon_s=horizon_s,
        control_plane=control_plane,
    )


def ext_scale_scenario(n_sites: int = 250, n_jobs: int = 10_000,
                       seed: int = 42,
                       horizon_s: float = 48 * 3600.0,
                       control_plane: str = ControlPlaneMode.PUSH,
                       background_batch_s: float = 300.0,
                       ) -> Scenario:
    """Extension: extreme-scale planning (``n_sites`` x ``n_jobs``).

    A single completion-time server plans a ``n_jobs``-job campaign
    over a synthetic catalog extrapolating the Grid3 shape to
    ``n_sites`` sites (see :func:`repro.simgrid.grid.synthetic_sites`).
    Faults are off and monitoring is slow (600 s) — the run measures
    the *scheduling kernel*, not fault response: incremental site-view
    scoring, the O(dirty) warehouse, and batched background arrivals
    are what keep 2,500 x 10^5 runs tractable.
    """
    from repro.simgrid.grid import synthetic_sites

    if n_jobs < 10:
        raise ValueError("need at least 10 jobs (one DAG)")
    return Scenario(
        name=f"ext-scale-{n_sites}x{n_jobs}",
        servers=(ServerSpec("completion-time", "completion-time"),),
        n_dags=n_jobs // 10,
        jobs_per_dag=10,
        seed=seed,
        sites=synthetic_sites(n_sites),
        background_batch_s=background_batch_s,
        fault_windows=(),
        monitoring_interval_s=600.0,
        horizon_s=horizon_s,
        control_plane=control_plane,
    )


def ext_eviction_scenario(n_sites: int = 250, n_dags: int = 30,
                          seed: int = 42,
                          horizon_s: float = 24 * 3600.0,
                          control_plane: str = ControlPlaneMode.PUSH,
                          ) -> Scenario:
    """Extension: kill-and-resubmit vs checkpoint-and-migrate under
    spot-style eviction churn.

    Two completion-time servers compete on a synthetic ``n_sites``
    catalog with the scenario's own faults *off* — a spot-eviction
    chaos plan supplies the churn, so both servers see the identical
    drain schedule.  The ``resubmit`` spec pins every tolerance knob
    off (an evicted attempt restarts from zero); the ``migrate`` spec
    leaves them on auto, so the plan arms job checkpointing and drain
    migration.  Jobs carry CPU-second requirements against a quota
    sized to never bind, purely so the quota-conservation invariant
    audits the refund/recharge ledger across every migration.

    Jobs run 300 s (vs the paper's 60 s) so an attempt spans several
    checkpoint intervals and cannot finish inside a default 120 s
    eviction notice — the regime where checkpoint + migrate and
    kill-and-resubmit genuinely diverge.
    """
    from repro.simgrid.grid import synthetic_sites

    return Scenario(
        name=f"ext-eviction-{n_sites}x{n_dags}dags",
        servers=(
            ServerSpec("resubmit", "completion-time",
                       migrate_on_drain=False,
                       job_checkpoint_interval_s=0.0,
                       job_checkpoint_cost_s=0.0),
            ServerSpec("migrate", "completion-time"),
        ),
        n_dags=n_dags,
        seed=seed,
        sites=synthetic_sites(n_sites),
        background_batch_s=300.0,
        fault_windows=(),
        monitoring_interval_s=600.0,
        horizon_s=horizon_s,
        control_plane=control_plane,
        job_requirements={"cpu_seconds": 300.0},
        quota_per_site={"cpu_seconds": n_dags * 10 * 300.0},
        workload_overrides={"runtime_s": 300.0},
    )


# -- drivers ---------------------------------------------------------------------
def fig2_feedback(n_dags: int = 30, seed: int = 42,
                  horizon_s: float = 24 * 3600.0,
                  control_plane: str = ControlPlaneMode.PUSH,
                  ) -> ExperimentResult:
    """Fig. 2: round-robin and #CPUs, each with and without feedback.

    Expected shape: each with-feedback variant beats its without-
    feedback twin on average DAG completion time (paper: by 20-29%).
    """
    return run_scenario(fig2_scenario(n_dags, seed, horizon_s, control_plane))


def fig3_algorithms(n_dags: int = 30, seed: int = 42,
                    horizon_s: float = 24 * 3600.0,
                    control_plane: str = ControlPlaneMode.PUSH,
                    ) -> ExperimentResult:
    """Figs. 3 (30 DAGs), 4 (60), 5 (120): the four-way comparison.

    Expected shape: completion-time wins average DAG completion, and
    its margin grows with load (17% at 30 DAGs -> 33-50% at 60-120);
    its jobs also spend less idle (queue) time.
    """
    return run_scenario(fig345_scenario(n_dags, seed, horizon_s,
                                        control_plane))


def fig5_pairwise(n_dags: int = 120, seed: int = 42,
                  horizon_s: float = 36 * 3600.0,
                  control_plane: str = ControlPlaneMode.PUSH) -> dict:
    """Fig. 5 via the paper's *pair-wise* protocol.

    At 120 DAGs a four-way group run doubles the SPHINX-side grid load
    relative to pair-wise runs and pushes the simulated testbed into
    saturation; the paper notes comparisons were made "in the pair-wise
    or group-wise approach".  Here the completion-time hybrid meets
    each rival head-to-head on an otherwise identical grid.

    Returns ``{rival_label: ExperimentResult}`` — each result holds the
    hybrid and that rival under equal conditions.
    """
    return {
        rival: run_scenario(
            fig5_pair_scenario(rival, n_dags, seed, horizon_s, control_plane)
        )
        for rival in ("queue-length", "num-cpus", "round-robin")
    }


def fig6_tables(result: ExperimentResult):
    """Fig. 6's derived series: per-server distribution tables and the
    Spearman rank correlation between jobs-per-site and avg completion."""
    tables = {}
    correlations = {}
    for label, server in result.servers.items():
        rows = site_distribution_table(
            server.jobs_per_site, server.avg_completion_per_site
        )
        tables[label] = rows
        usable = [(jobs, avg) for _s, jobs, avg in rows if avg == avg]
        if len(usable) >= 2:
            correlations[label] = rank_correlation(
                [j for j, _a in usable], [a for _j, a in usable]
            )
        else:
            correlations[label] = float("nan")
    return tables, correlations


def fig6_site_distribution(n_dags: int = 120, seed: int = 42,
                           horizon_s: float = 24 * 3600.0,
                           control_plane: str = ControlPlaneMode.PUSH):
    """Fig. 6: per-site job distribution vs avg completion time.

    Returns ``(result, tables, correlations)`` where ``tables[label]``
    holds (site, jobs, avg-completion) rows and ``correlations[label]``
    the Spearman rank correlation between the two series.  Expected
    shape: strongly negative for completion-time (inverse proportional,
    Fig. 6a); weak/indifferent for num-cpus (Fig. 6b).
    """
    result = run_scenario(fig6_scenario(n_dags, seed, horizon_s,
                                        control_plane))
    tables, correlations = fig6_tables(result)
    return result, tables, correlations


def fig7_policy(n_dags: int = 120, seed: int = 42,
                horizon_s: float = 24 * 3600.0,
                cpu_quota_s: Optional[float] = None,
                control_plane: str = ControlPlaneMode.PUSH,
                ) -> ExperimentResult:
    """Fig. 7: the four-way comparison under per-user usage quotas.

    Every job demands its nominal CPU-seconds; each user holds a per-
    site CPU-second quota sized so no single site can absorb the whole
    workload — the quota genuinely constrains placement.  Expected
    shape: per-algorithm results within a modest factor of the
    unconstrained run (the paper: "similar to those without policy").
    """
    return run_scenario(fig7_scenario(n_dags, seed, horizon_s, cpu_quota_s,
                                      control_plane))


def fig8_timeouts(n_dags: int = 120, seed: int = 42,
                  horizon_s: float = 24 * 3600.0,
                  control_plane: str = ControlPlaneMode.PUSH,
                  ) -> ExperimentResult:
    """Fig. 8: rescheduling (timeout) counts per strategy.

    The paper's series: completion-time 125, round-robin(+fb) 154,
    ... and #CPUs *without* feedback 2258.  Expected shape: the
    without-feedback variant resubmits an order of magnitude more than
    the feedback-driven strategies.
    """
    return run_scenario(fig8_scenario(n_dags, seed, horizon_s,
                                      control_plane))


def ext_reservation(n_dags: int = 30, seed: int = 42,
                    horizon_s: float = 24 * 3600.0,
                    control_plane: str = ControlPlaneMode.PUSH,
                    ) -> ExperimentResult:
    """Extension: reactive feedback vs proactive stage reservations.

    Expected shape: the reservation variant finishes at least as many
    DAGs as the reactive one under the chaos fault script (reservations
    on crashed sites expire site-side and the planner falls back to the
    normal queue, so proactivity never *costs* completions).
    """
    return run_scenario(ext_reservation_scenario(n_dags, seed, horizon_s,
                                                 control_plane))


def ext_eviction(n_sites: int = 250, n_dags: int = 30, seed: int = 42,
                 horizon_s: float = 24 * 3600.0,
                 control_plane: str = ControlPlaneMode.PUSH,
                 eviction_mtbf_s: float = 2 * 3600.0,
                 obs=None):
    """Extension: preemption tolerance under spot-eviction churn.

    Runs :func:`ext_eviction_scenario` under the ``spot-eviction``
    chaos plan (same seed => same drain schedule for both servers) and
    returns the :class:`~repro.chaos.run.ChaosRunResult` — its
    ``.result`` holds the per-server migration/restore/preemption-loss
    counters, its ``.report`` the invariant audit.  Expected shape:
    the ``migrate`` server loses measurably less work (lower
    ``preempted_work_s``) and finishes no fewer DAGs than ``resubmit``
    at the same eviction rate.
    """
    from dataclasses import replace

    from repro.chaos.plan import make_plan
    from repro.chaos.run import run_chaos

    plan = replace(make_plan("spot-eviction", seed=seed),
                   eviction_mtbf_s=eviction_mtbf_s)
    scenario = ext_eviction_scenario(n_sites, n_dags, seed, horizon_s,
                                     control_plane)
    return run_chaos(scenario, plan, obs=obs)


def ext_scale(n_sites: int = 250, n_jobs: int = 10_000, seed: int = 42,
              horizon_s: float = 48 * 3600.0,
              control_plane: str = ControlPlaneMode.PUSH,
              background_batch_s: float = 300.0) -> ExperimentResult:
    """Extension: extreme-scale planning throughput.

    Expected shape: the campaign finishes within the horizon and
    ``event_count / wall-clock`` stays in the tens of thousands of
    events per second up to 2,500 sites x 10^5 jobs (the acceptance
    gate for the incremental-scoring + O(dirty) warehouse work; see
    ``benchmarks/bench_scale.py``).
    """
    return run_scenario(ext_scale_scenario(
        n_sites, n_jobs, seed, horizon_s, control_plane,
        background_batch_s,
    ))
