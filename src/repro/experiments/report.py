"""Plain-text tables for bench output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_seconds"]


def format_seconds(value: float) -> str:
    """Human-readable seconds (the paper's axes are in seconds)."""
    if value != value:  # NaN
        return "n/a"
    return f"{value:,.0f}s"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """A fixed-width table; every figure/bench prints through this."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:
            return "n/a"
        return f"{value:,.1f}"
    return str(value)
