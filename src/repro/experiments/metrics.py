"""Metric helpers shared by figures, tests, and benchmarks."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "improvement_pct",
    "rank_correlation",
    "site_distribution_table",
]


def improvement_pct(better: float, worse: float) -> float:
    """How much smaller ``better`` is than ``worse``, in percent.

    The paper quotes e.g. "less than the other cases by about 20~29%".
    """
    if worse <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (worse - better) / worse


def rank_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation (no scipy dependency in the library).

    Used for Fig. 6: the completion-time algorithm should show a strong
    *negative* correlation between per-site job count and per-site
    average completion time.
    """
    if len(x) != len(y):
        raise ValueError("sequences must align")
    if len(x) < 2:
        raise ValueError("need at least two points")
    rx = _tied_ranks(np.asarray(x, dtype=float))
    ry = _tied_ranks(np.asarray(y, dtype=float))
    rx -= rx.mean()
    ry -= ry.mean()
    denom = np.sqrt((rx**2).sum() * (ry**2).sum())
    if denom == 0:
        return 0.0
    return float((rx * ry).sum() / denom)


def _tied_ranks(values: np.ndarray) -> np.ndarray:
    """0-based ranks with ties assigned their average rank."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=float)
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and values[order[j + 1]] == values[order[i]]:
            j += 1
        ranks[order[i:j + 1]] = (i + j) / 2.0
        i = j + 1
    return ranks


def site_distribution_table(
    jobs_per_site: Mapping[str, int],
    avg_completion_per_site: Mapping[str, float],
) -> list[tuple[str, int, float]]:
    """Rows of (site, completed jobs, avg completion s), Fig. 6 style.

    Only sites that completed at least one job appear (matching the
    paper's plots, which show the sites each algorithm actually used).
    """
    rows = []
    for site in sorted(jobs_per_site):
        rows.append(
            (site, jobs_per_site[site], avg_completion_per_site.get(site, float("nan")))
        )
    return rows
