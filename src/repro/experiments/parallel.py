"""Parallel experiment suite — fan independent scenarios across CPUs.

Every paper figure (and ablation) is an independent simulation: its
own :class:`~repro.sim.engine.Environment`, its own RNG streams seeded
from the scenario, no shared mutable state.  That makes the suite
embarrassingly parallel — each :class:`SuiteCase` runs in a worker
process and the merged output is **bit-identical** to a sequential
run:

* every case is fully described by its picklable :class:`Scenario`;
  workers rebuild the whole stack from it, exactly as ``workers=1``
  does in-process;
* results are collected in *submission* order, never completion order,
  so the merge is deterministic regardless of worker scheduling;
* wall-clock timings are measured inside the worker and reported
  separately from the simulation metrics, which depend only on the
  scenario.

``run_suite`` powers the ``repro suite`` CLI subcommand, which writes
``BENCH_SUITE.json`` — per-figure wall-clock, kernel event counts,
events/second throughput, and headline metrics.
"""

from __future__ import annotations

import json
import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro import obs as obs_mod
from repro.experiments.figures import (
    ext_eviction_scenario,
    ext_reservation_scenario,
    ext_scale_scenario,
    fig2_scenario,
    fig345_scenario,
    fig5_pair_scenario,
    fig6_scenario,
    fig7_scenario,
    fig8_scenario,
)
from repro.experiments.runner import ExperimentResult, run_scenario
from repro.experiments.scenarios import (
    ControlPlaneMode,
    Scenario,
    ServerSpec,
)

__all__ = [
    "SuiteCase",
    "SuiteRun",
    "default_suite",
    "eviction_suite",
    "federation_suite",
    "scale_suite",
    "run_suite",
    "eviction_counts",
    "headline_metrics",
    "planning_latency_percentiles",
    "preemption_loss_percentiles",
    "reservation_counts",
    "shard_latency_percentiles",
    "suite_payload",
    "wall_breakdown_ms",
]

#: BENCH_SUITE.json schema identifier; bump on breaking payload changes.
SCHEMA = "repro-bench-suite/v1"


@dataclass(frozen=True, slots=True)
class SuiteCase:
    """One unit of suite work: a named, self-contained scenario.

    ``plan`` optionally attaches a :class:`repro.chaos.plan.ChaosPlan`;
    the case then runs under :func:`repro.chaos.run.run_chaos` and a
    violated invariant fails the whole suite (a chaos case that merely
    *degrades* would silently poison the perf trend).  Both pieces are
    frozen, picklable data, so chaos cases parallelise like any other.
    """

    name: str
    scenario: Scenario
    plan: object | None = None


@dataclass(slots=True)
class SuiteRun:
    """One finished case: its result plus the worker-side wall-clock
    and the case's metrics-registry snapshot (with raw histogram
    samples, so suite-level merges keep exact pooled percentiles).

    ``rss_mb`` is the worker's peak RSS when the case finished.  With
    pooled workers that is a *process-lifetime* peak — a worker that
    ran a big case first reports that high-water mark for every later
    case too — so per-case attribution is exact only at ``workers=1``
    (how the CI memory gate runs it)."""

    name: str
    result: ExperimentResult
    wall_s: float
    metrics: dict = field(default_factory=dict)
    rss_mb: float = 0.0


def _scaled(paper_n: int, scale: float, minimum: int = 4) -> int:
    """A paper DAG count under the suite scale factor (cf. benchmarks)."""
    return max(minimum, round(paper_n * scale))


def default_suite(scale: float = 1.0, seed: int = 42,
                  control_plane: str = ControlPlaneMode.PUSH,
                  ) -> tuple[SuiteCase, ...]:
    """The full evaluation: Figs. 2-8 plus the two ablations.

    ``scale`` shrinks every workload proportionally (floor of 4 DAGs),
    mirroring ``REPRO_BENCH_SCALE`` in the benchmark harness; shape
    criteria are only meaningful at scale 1.0.  ``control_plane``
    selects the event-driven (``"push"``, default) or fixed-period
    (``"poll"``) control plane across every case.
    """
    if scale <= 0:
        raise ValueError("scale must be > 0")
    mode = control_plane
    cases = [
        SuiteCase("fig2", fig2_scenario(_scaled(30, scale), seed,
                                        control_plane=mode)),
        SuiteCase("fig3", fig345_scenario(_scaled(30, scale), seed,
                                          control_plane=mode)),
        SuiteCase("fig4", fig345_scenario(_scaled(60, scale), seed,
                                          control_plane=mode)),
    ]
    for rival in ("queue-length", "num-cpus", "round-robin"):
        cases.append(SuiteCase(
            f"fig5-pair-{rival}",
            fig5_pair_scenario(rival, _scaled(120, scale), seed,
                               control_plane=mode),
        ))
    cases += [
        SuiteCase("fig6", fig6_scenario(_scaled(120, scale), seed,
                                        control_plane=mode)),
        SuiteCase("fig7", fig7_scenario(_scaled(120, scale), seed,
                                        control_plane=mode)),
        SuiteCase("fig8", fig8_scenario(_scaled(120, scale), seed,
                                        control_plane=mode)),
        SuiteCase("ablation-estimator", Scenario(
            name=f"ablation-estimator-{_scaled(30, scale)}dags",
            servers=(
                ServerSpec("default(ewma+corr)", "completion-time"),
                ServerSpec("mean-estimator", "completion-time",
                           estimator_mode="mean"),
                ServerSpec("no-correction", "completion-time",
                           use_prediction_correction=False),
            ),
            n_dags=_scaled(30, scale),
            seed=seed,
            control_plane=mode,
        )),
    ]
    for interval in (30.0, 300.0, 900.0):
        cases.append(SuiteCase(
            f"ablation-staleness-{interval:.0f}s",
            Scenario(
                name=f"ablation-staleness-{interval:.0f}s",
                servers=(
                    ServerSpec("queue-length", "queue-length"),
                    ServerSpec("completion-time", "completion-time"),
                ),
                n_dags=_scaled(30, scale),
                seed=seed,
                monitoring_interval_s=interval,
                control_plane=mode,
            ),
        ))
    cases.append(SuiteCase(
        "ext-reservation",
        ext_reservation_scenario(_scaled(30, scale), seed,
                                 control_plane=mode),
    ))
    return tuple(cases)


def federation_suite(shard_counts: Sequence[int], seed: int = 42,
                     scale: float = 1.0) -> tuple[SuiteCase, ...]:
    """Federated cases: one ``ext-federation-Nshards`` per shard count.

    ``scale`` shrinks the per-user DAG count (floor of 2); the shard
    counts are the point of the sweep and stay as requested.  Cases
    run under :func:`repro.federation.run_federation` — ``_run_case``
    dispatches on the scenario type.
    """
    if scale <= 0:
        raise ValueError("scale must be > 0")
    # Lazy import: repro.federation.runner imports back into the
    # experiments package, so binding it at module-import time would
    # be circular.
    from repro.federation.runner import ext_federation_scenario

    cases = []
    for n_shards in shard_counts:
        cases.append(SuiteCase(
            f"ext-federation-{n_shards}shards",
            ext_federation_scenario(
                n_shards=n_shards,
                dags_per_user=max(2, round(5 * scale)),
                seed=seed,
            ),
        ))
    return tuple(cases)


def scale_suite(sizes: Sequence[tuple[int, int]], seed: int = 42,
                control_plane: str = ControlPlaneMode.PUSH,
                scale: float = 1.0) -> tuple[SuiteCase, ...]:
    """Extreme-scale cases: one ``ext-scale-SxJ`` per (sites, jobs).

    ``scale`` shrinks the *job* counts (floor of 10 = one DAG); the
    site counts are the point of the sweep and stay as requested.
    """
    if scale <= 0:
        raise ValueError("scale must be > 0")
    cases = []
    for n_sites, n_jobs in sizes:
        jobs = max(10, round(n_jobs * scale / 10) * 10)
        cases.append(SuiteCase(
            f"ext-scale-{n_sites}x{jobs}",
            ext_scale_scenario(n_sites, jobs, seed,
                               control_plane=control_plane),
        ))
    return tuple(cases)


def eviction_suite(scale: float = 1.0, seed: int = 42,
                   control_plane: str = ControlPlaneMode.PUSH,
                   ) -> tuple[SuiteCase, ...]:
    """The eviction-tolerance case: ``ext-eviction`` under the
    ``spot-eviction`` chaos preset.

    Runs the kill-and-resubmit baseline and the checkpoint+migrate
    server side by side on the 250-site synthetic catalog while the
    preset's per-site eviction storm drains sites out from under them.
    ``scale`` shrinks the DAG count (floor of 4); migration counts and
    preemption-loss percentiles land in the report via
    :func:`eviction_counts` / :func:`preemption_loss_percentiles`.
    """
    if scale <= 0:
        raise ValueError("scale must be > 0")
    # Lazy import: repro.chaos.run imports back into this module.
    from repro.chaos.plan import make_plan

    return (SuiteCase(
        "ext-eviction",
        ext_eviction_scenario(n_dags=_scaled(30, scale), seed=seed,
                              control_plane=control_plane),
        plan=make_plan("spot-eviction", seed),
    ),)


def _dispatch(scenario, obs, heartbeat, plan=None) -> ExperimentResult:
    """Run one scenario under whichever runner owns its type.

    With ``plan`` set the case runs as a chaos drill (no heartbeat —
    drills audit end state, they are not perf probes) and an invariant
    violation raises instead of returning a quietly-broken result.
    """
    # Lazy imports: both runners import back into this package.
    if plan is not None:
        from repro.chaos.run import run_chaos

        drill = run_chaos(scenario, plan, obs=obs)
        if not drill.ok:
            raise RuntimeError(
                f"chaos invariants violated in {scenario.name}:\n"
                f"{drill.report.format_text()}"
            )
        return drill.result
    from repro.federation.runner import FederationScenario, run_federation

    if isinstance(scenario, FederationScenario):
        return run_federation(scenario, obs=obs, heartbeat=heartbeat).result
    return run_scenario(scenario, obs=obs, heartbeat=heartbeat)


def _run_case(case: SuiteCase,
              trace_dir: Optional[str] = None,
              stream_spans: bool = False,
              reservoir: Optional[int] = None,
              progress_interval: Optional[float] = None) -> SuiteRun:
    """Worker entry point: run one case, time it (module-level: pickled
    by name into the pool workers; every argument is a picklable
    primitive — sinks and heartbeats are built *inside* the worker).

    Every case runs under a metrics-only observability facade (strictly
    passive: ``event_count`` and all scheduling metrics are untouched).
    With ``trace_dir`` set, spans are collected too and each worker
    writes its own ``<case>.spans.jsonl`` / ``<case>.trace.json`` pair
    — span payloads never ride through pickling.  ``stream_spans``
    flushes closed spans to the JSONL incrementally instead (tracer
    memory stays at open-spans-only; the Chrome trace, which needs the
    full span list, is skipped).  ``reservoir`` bounds every histogram
    to that many samples.  ``progress_interval`` turns on the wall-clock
    heartbeat: stderr lines plus ``<case>.heartbeat.jsonl`` under
    ``trace_dir`` (when given).
    """
    from repro.obs.export import JsonlSpanSink
    from repro.obs.runtime import Heartbeat, rss_mb

    out = None
    if trace_dir is not None:
        out = Path(trace_dir)
        out.mkdir(parents=True, exist_ok=True)
    sink = None
    if stream_spans and out is not None:
        sink = JsonlSpanSink(out / f"{case.name}.spans.jsonl")
    config = obs_mod.ObsConfig(
        spans=trace_dir is not None,
        histogram_max_samples=reservoir,
        span_sink=sink,
    )
    obs = obs_mod.Obs(config)
    heartbeat = None
    if progress_interval is not None:
        heartbeat = Heartbeat(
            progress_interval,
            path=(out / f"{case.name}.heartbeat.jsonl"
                  if out is not None else None),
            label=case.name,
        )
    t0 = time.perf_counter()
    result = _dispatch(case.scenario, obs=obs, heartbeat=heartbeat,
                       plan=case.plan)
    wall_s = time.perf_counter() - t0
    if out is not None and not stream_spans:
        from repro.obs.export import write_chrome_trace, write_spans_jsonl

        spans = obs.tracer.spans
        write_spans_jsonl(spans, out / f"{case.name}.spans.jsonl")
        write_chrome_trace(spans, out / f"{case.name}.trace.json",
                           metrics=obs.metrics,
                           clock_end_s=result.elapsed_sim_s)
    return SuiteRun(name=case.name, result=result, wall_s=wall_s,
                    metrics=obs.metrics.snapshot(include_samples=True),
                    rss_mb=rss_mb())


def run_suite(cases: Iterable[SuiteCase],
              workers: int = 1,
              trace_dir: Optional[str] = None,
              stream_spans: bool = False,
              reservoir: Optional[int] = None,
              progress_interval: Optional[float] = None) -> list[SuiteRun]:
    """Run every case; results come back in case order.

    ``workers=1`` runs in-process (no pool, no pickling); ``workers>1``
    fans cases over a :class:`ProcessPoolExecutor`.  Simulation metrics
    are bit-identical either way — only ``wall_s`` differs.

    ``trace_dir`` additionally collects spans per case and writes, on
    top of each worker's per-case files, a merged ``suite.spans.jsonl``
    (cases concatenated in case order — deterministic regardless of
    worker scheduling) and ``suite.metrics.json`` (snapshots folded
    with :func:`repro.obs.merge_snapshots`, same order).

    Flight-recorder knobs (see :func:`_run_case`): ``stream_spans``
    flushes spans incrementally (requires ``trace_dir``); ``reservoir``
    bounds histogram memory; ``progress_interval`` emits a live
    heartbeat per case.
    """
    cases = list(cases)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if stream_spans and trace_dir is None:
        raise ValueError("stream_spans requires trace_dir")
    if workers == 1 or len(cases) <= 1:
        runs = [_run_case(c, trace_dir, stream_spans, reservoir,
                          progress_interval) for c in cases]
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(cases))
        ) as pool:
            futures = [pool.submit(_run_case, c, trace_dir, stream_spans,
                                   reservoir, progress_interval)
                       for c in cases]
            # Submission order, not completion order: determinism.
            runs = [f.result() for f in futures]
    if trace_dir is not None:
        _merge_trace_dir(Path(trace_dir), runs)
    return runs


def _merge_trace_dir(out: Path, runs: Sequence[SuiteRun]) -> None:
    """Fold per-case worker files into suite-level artifacts."""
    with (out / "suite.spans.jsonl").open("w") as fh:
        for run in runs:
            case_file = out / f"{run.name}.spans.jsonl"
            if case_file.exists():
                fh.write(case_file.read_text())
    merged = obs_mod.merge_snapshots(run.metrics for run in runs)
    # Raw samples served their purpose (exact pooled percentiles);
    # drop them from the artifact.
    for hist in merged["histograms"]:
        hist.pop("samples", None)
    (out / "suite.metrics.json").write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n"
    )


def _json_safe(value: float) -> Optional[float]:
    """NaN -> None (JSON has no NaN; empty series average is 'absent')."""
    return None if value != value else value


def headline_metrics(result: ExperimentResult) -> dict:
    """The deterministic summary of one result — everything here
    depends only on the scenario, never on wall-clock or worker count
    (what the sequential-vs-parallel equivalence test compares)."""
    return {
        "scenario": result.scenario_name,
        "horizon_reached": result.horizon_reached,
        "elapsed_sim_s": result.elapsed_sim_s,
        "event_count": result.event_count,
        "rpc_count": result.rpc_count,
        "servers": {
            label: {
                "finished_dags": s.finished_dags,
                "total_dags": s.total_dags,
                "avg_dag_completion_s": _json_safe(s.avg_dag_completion_s),
                "avg_job_execution_s": _json_safe(s.avg_job_execution_s),
                "avg_job_idle_s": _json_safe(s.avg_job_idle_s),
                "resubmissions": s.resubmissions,
                "timeouts": s.timeouts,
                "migrations": s.migrations,
                "checkpoint_restores": s.checkpoint_restores,
                "preempted_work_s": s.preempted_work_s,
            }
            for label, s in result.servers.items()
        },
    }


def _nearest_rank(ordered: Sequence[float], p: float) -> float:
    """Nearest-rank percentile over a sorted sample list (the same
    definition :class:`repro.obs.metrics.Histogram` uses, so pooled
    and single-histogram numbers are directly comparable)."""
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def planning_latency_percentiles(
    snapshot: dict,
) -> tuple[Optional[float], Optional[float]]:
    """(p50, p95) of the ``server.planning_latency_s`` histogram in a
    registry snapshot; (None, None) when absent or empty.

    Single-server runs record into the unlabeled histogram.  Federated
    runs record per shard (``shard=<label>``) and leave the unlabeled
    one empty, so when it has no observations this pools the raw
    samples of every labeled sibling instead — the federation-wide
    percentiles (requires the snapshot to carry samples, as suite-run
    snapshots do)."""
    pooled: list[float] = []
    for hist in snapshot.get("histograms", ()):
        if hist["name"] != "server.planning_latency_s":
            continue
        if not hist["labels"]:
            if hist.get("count"):
                return hist.get("p50"), hist.get("p95")
            continue
        pooled.extend(hist.get("samples", ()))
    if not pooled:
        return None, None
    pooled.sort()
    return _nearest_rank(pooled, 50), _nearest_rank(pooled, 95)


def shard_latency_percentiles(snapshot: dict) -> dict:
    """Per-shard planning latency: ``{shard: {"p50": ..., "p95": ...,
    "count": ...}}`` from the ``shard``-labelled
    ``server.planning_latency_s`` histograms; empty for single-server
    runs."""
    out = {}
    for hist in snapshot.get("histograms", ()):
        if hist["name"] != "server.planning_latency_s":
            continue
        shard = hist.get("labels", {}).get("shard")
        if shard is None:
            continue
        out[shard] = {
            "p50": hist.get("p50"),
            "p95": hist.get("p95"),
            "count": hist.get("count", 0),
        }
    return dict(sorted(out.items()))


def reservation_counts(snapshot: dict) -> dict:
    """Reservation activity in a metrics-registry snapshot.

    Sums the per-site ``site.reservations`` counters by outcome
    (confirmed/rejected/released/expired/cancelled) and the
    ``site.backfill_starts`` counter; all zeros when the case ran no
    reserve-ahead server."""
    out = {"confirmed": 0, "rejected": 0, "released": 0,
           "expired": 0, "cancelled": 0, "backfill_starts": 0}
    for counter in snapshot.get("counters", ()):
        if counter["name"] == "site.reservations":
            outcome = counter["labels"].get("outcome")
            if outcome in out:
                out[outcome] += int(counter["value"])
        elif counter["name"] == "site.backfill_starts":
            out["backfill_starts"] += int(counter["value"])
    return out


def eviction_counts(snapshot: dict) -> dict:
    """Eviction-tolerance activity in a metrics-registry snapshot.

    Sums the per-site ``site.evictions`` counter (running jobs killed
    at slot reclaim) and the per-server ``server.migrations`` /
    ``job.checkpoint_restores`` counters; all zeros when the case ran
    without an eviction storm."""
    out = {"evictions": 0, "migrations": 0, "checkpoint_restores": 0}
    names = {"site.evictions": "evictions",
             "server.migrations": "migrations",
             "job.checkpoint_restores": "checkpoint_restores"}
    for counter in snapshot.get("counters", ()):
        key = names.get(counter["name"])
        if key is not None:
            out[key] += int(counter["value"])
    return out


def preemption_loss_percentiles(snapshot: dict) -> dict:
    """Per-server preemption loss: ``{server: {"p50": ..., "p95": ...,
    "count": ..., "total_s": ...}}`` from the ``server``-labelled
    ``server.preemption_loss_s`` histograms (CPU-seconds of attempt
    progress discarded per kill, net of checkpoint restores); empty
    when nothing was ever preempted."""
    out = {}
    for hist in snapshot.get("histograms", ()):
        if hist["name"] != "server.preemption_loss_s":
            continue
        server = hist.get("labels", {}).get("server")
        if server is None or not hist.get("count"):
            continue
        out[server] = {
            "p50": hist.get("p50"),
            "p95": hist.get("p95"),
            "count": hist.get("count", 0),
            "total_s": hist.get("sum", 0.0),
        }
    return dict(sorted(out.items()))


def wall_breakdown_ms(snapshot: dict) -> dict:
    """Per-phase wall-clock attribution (``server.wall_ms`` counters)
    in a metrics-registry snapshot; empty when the case ran without
    obs-enabled phase timers."""
    out = {}
    for counter in snapshot.get("counters", ()):
        if counter["name"] == "server.wall_ms":
            phase = counter["labels"].get("phase", "?")
            out[phase] = out.get(phase, 0.0) + counter["value"]
    return out


def _federation_counts(snapshot: dict) -> dict:
    """Meta-scheduler routing activity in a registry snapshot."""
    out = {"admitted": 0, "spilled": 0, "rehomed": 0}
    names = {"meta.dags_admitted": "admitted",
             "meta.dags_spilled": "spilled",
             "meta.dags_rehomed": "rehomed"}
    for counter in snapshot.get("counters", ()):
        key = names.get(counter["name"])
        if key is not None:
            out[key] += int(counter["value"])
    return out


def suite_payload(runs: Sequence[SuiteRun], scale: float,
                  workers: int,
                  control_plane: str = ControlPlaneMode.PUSH,
                  shards: Optional[Sequence[int]] = None) -> dict:
    """The BENCH_SUITE.json document for one suite invocation.

    ``shards`` records which federated shard counts ran (the
    ``--shards`` flag), so the perf-trend comparability key can keep
    federated and plain suite runs apart."""
    figures = {}
    for run in runs:
        lat_p50, lat_p95 = planning_latency_percentiles(run.metrics)
        figures[run.name] = {
            "wall_s": run.wall_s,
            "events_per_s": (run.result.event_count / run.wall_s
                             if run.wall_s > 0 else None),
            "rss_mb": run.rss_mb,
            "wall_breakdown_ms": wall_breakdown_ms(run.metrics),
            "planning_latency_p50_s": lat_p50,
            "planning_latency_p95_s": lat_p95,
            "reservations": reservation_counts(run.metrics),
            "evictions": eviction_counts(run.metrics),
            **headline_metrics(run.result),
        }
        per_shard = shard_latency_percentiles(run.metrics)
        if per_shard:
            figures[run.name]["shards"] = per_shard
            figures[run.name]["federation"] = _federation_counts(
                run.metrics)
        loss = preemption_loss_percentiles(run.metrics)
        if loss:
            figures[run.name]["preemption_loss_s"] = loss
    return {
        "schema": SCHEMA,
        "scale": scale,
        "workers": workers,
        "control_plane": control_plane,
        "shards": sorted(shards) if shards else [],
        "cases": [run.name for run in runs],
        "total_wall_s": sum(run.wall_s for run in runs),
        "total_events": sum(run.result.event_count for run in runs),
        "figures": figures,
    }
