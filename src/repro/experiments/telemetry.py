"""Time-series telemetry for experiment runs.

Samples site-level state (queue depth, running jobs, utilization,
fault state) on a fixed period, producing the utilization timelines
used for debugging scheduler dynamics and for the site-load figures.
Kept separate from :mod:`repro.services.monitoring` on purpose: this is
the *experimenter's* omniscient probe, not the in-band monitoring
system the schedulers see.

When handed a :class:`repro.obs.metrics.MetricsRegistry`, every sample
is mirrored into registry :class:`~repro.obs.metrics.Series`
instruments (``site.queue_depth{site=}`` etc.), so site timelines share
the observability export path (Chrome-trace counter tracks, snapshot
JSON) while :class:`SiteSeries` keeps serving the figure code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.engine import Environment
from repro.simgrid.grid import Grid

__all__ = ["GridTelemetry", "SiteSeries"]


@dataclass(slots=True)
class SiteSeries:
    """Sampled time series for one site (parallel arrays)."""

    site: str
    times: np.ndarray
    queued: np.ndarray
    running: np.ndarray
    utilization: np.ndarray
    up: np.ndarray  # bool: not DOWN at sample time

    @property
    def mean_utilization(self) -> float:
        return float(self.utilization.mean()) if len(self.times) else 0.0

    @property
    def peak_queue(self) -> int:
        return int(self.queued.max()) if len(self.times) else 0

    @property
    def availability(self) -> float:
        """Fraction of samples where the site was not DOWN."""
        return float(self.up.mean()) if len(self.times) else 1.0


class GridTelemetry:
    """Samples every site of a grid on a period."""

    def __init__(self, env: Environment, grid: Grid,
                 sample_interval_s: float = 60.0, metrics=None):
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be > 0")
        self.env = env
        self.grid = grid
        self.sample_interval_s = sample_interval_s
        self._times: list[float] = []
        self._rows: dict[str, list[tuple[int, int, float, bool]]] = {
            s.name: [] for s in grid
        }
        #: optional obs registry mirror: site -> (queue, running, util)
        #: Series instruments, pre-resolved so sampling stays cheap.
        self._series = None
        if metrics is not None:
            self._series = {
                s.name: (
                    metrics.series("site.queue_depth", site=s.name),
                    metrics.series("site.running", site=s.name),
                    metrics.series("site.utilization", site=s.name),
                )
                for s in grid
            }
        env.process(self._sampler())

    def _sampler(self):
        from repro.simgrid.site import SiteState

        while True:
            now = self.env.now
            self._times.append(now)
            for site in self.grid:
                sample = (
                    site.queued_jobs,
                    site.running_jobs,
                    site.scheduler.utilization,
                    site.state is not SiteState.DOWN,
                )
                self._rows[site.name].append(sample)
                if self._series is not None:
                    queued, running, util = self._series[site.name]
                    queued.record(now, sample[0])
                    running.record(now, sample[1])
                    util.record(now, sample[2])
            yield self.env.timeout(self.sample_interval_s)

    # -- extraction ---------------------------------------------------------------
    @property
    def sample_count(self) -> int:
        return len(self._times)

    def series(self, site: str) -> SiteSeries:
        rows = self._rows[site]
        if not rows:
            return SiteSeries(site, np.array([]), np.array([], dtype=int),
                              np.array([], dtype=int), np.array([]),
                              np.array([], dtype=bool))
        arr = np.array([(q, r, u, up) for q, r, u, up in rows], dtype=float)
        return SiteSeries(
            site=site,
            times=np.array(self._times),
            queued=arr[:, 0].astype(int),
            running=arr[:, 1].astype(int),
            utilization=arr[:, 2],
            up=arr[:, 3].astype(bool),
        )

    def summary(self) -> list[tuple[str, float, int, float]]:
        """(site, mean utilization, peak queue, availability) per site."""
        return [
            (name, s.mean_utilization, s.peak_queue, s.availability)
            for name in self._rows
            for s in [self.series(name)]
        ]
