"""Scenario and server specifications for the Grid3 experiments.

A :class:`Scenario` describes one concurrent comparison run: the grid,
its faults and background load, the workload size, and the list of
SPHINX server variants that compete for the same resources — the
paper's protocol ("these servers are started at the same time so that
they can compete for the same set of grid resources").

The default fault script mirrors the failure modes Grid3 actually
exhibited and the paper's §4 setup requires:

* a **permanent blackhole** (``mcfarm``) — accepts jobs forever,
  runs none; only scheduler-side timeouts catch it,
* a **big-site blackhole** (``atlas``, 180 advertised CPUs, silently
  broken for the whole run) — the failure mode that punishes
  feedback-less scheduling hardest, because load-rate strategies keep
  feeding a large site whose jobs never come back, while feedback
  flags it after its first timeouts,
* **mid-run outages that do not heal within the run** (``nest``, and
  the big ``ufloridapg``) — jobs killed loudly; the paper's testbed
  sessions were short enough that a site which died mid-experiment
  stayed dead, which is what makes the sticky reliability rule
  (cancelled > completed, no forgiveness) the right call,
* a **transient blackhole** (``spike``) — silent failure that heals,
* a **degradation window** (``cluster28``) — 4x slowdown for a while.

All servers in a scenario see the identical script.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.simgrid.failures import DowntimeWindow
from repro.simgrid.grid import GRID3_SITES, SiteSpec
from repro.simgrid.site import SiteState
from repro.workflow.generator import WorkloadSpec

__all__ = ["ServerSpec", "Scenario", "ControlPlaneMode",
           "default_fault_windows"]


class ControlPlaneMode:
    """Valid values for :attr:`Scenario.control_plane`.

    ``POLL`` is the original fixed-period control plane (server ticks
    every ``tick_s``, clients poll every ``poll_s``); ``PUSH`` is the
    event-driven one (server wakes on plannable work or the nearest
    deadline, clients drain on the server's doorbell).  Both modes
    produce the same scheduling decisions; they differ in how many
    kernel events it costs to reach them.
    """

    POLL = "poll"
    PUSH = "push"
    ALL = (POLL, PUSH)


@dataclass(frozen=True, slots=True)
class ServerSpec:
    """One SPHINX server variant competing in a scenario."""

    label: str
    algorithm: str
    use_feedback: bool = True
    algorithm_kwargs: dict = field(default_factory=dict)
    use_prediction_correction: bool = True
    estimator_mode: str = "ewma"
    prediction_correction_strength: float = 4.0
    #: proactive advance reservations for DAG stages (vs purely
    #: reactive feedback); see ServerConfig.reserve_ahead.
    reserve_ahead: bool = False
    reservation_slack: float = 1.5
    #: incremental site-view cache (decision-identical; off = rebuild
    #: every view from scratch, the ablation/bisect knob).
    view_cache: bool = True
    #: eviction tolerance (see ServerConfig): None = auto — a chaos
    #: plan's eviction axis decides; explicit values win over the plan
    #: (e.g. ``migrate_on_drain=False`` pins the kill-and-resubmit
    #: baseline even under a migration-armed plan).
    migrate_on_drain: Optional[bool] = None
    job_checkpoint_interval_s: Optional[float] = None
    job_checkpoint_cost_s: Optional[float] = None


def default_fault_windows(horizon_s: float) -> tuple[DowntimeWindow, ...]:
    """The standard Grid3 fault script (see module docstring)."""
    windows: list[DowntimeWindow] = [
        DowntimeWindow("mcfarm", 0.0, horizon_s, state=SiteState.BLACKHOLE),
        DowntimeWindow("atlas", 0.0, horizon_s, state=SiteState.BLACKHOLE),
        DowntimeWindow("spike", 1800.0, 5400.0, state=SiteState.BLACKHOLE),
        DowntimeWindow("cluster28", 900.0, 4500.0, state=SiteState.DEGRADED),
    ]
    if horizon_s > 1800.0:
        # nest dies loudly 30 min in and never returns this run.
        windows.append(DowntimeWindow("nest", 1800.0, horizon_s))
    if horizon_s > 3600.0:
        # ufloridapg (a big, good site) dies an hour in.
        windows.append(DowntimeWindow("ufloridapg", 3600.0, horizon_s))
    return tuple(windows)


@dataclass(slots=True)
class Scenario:
    """One complete experiment configuration."""

    name: str
    servers: tuple[ServerSpec, ...]
    n_dags: int = 30
    jobs_per_dag: int = 10
    seed: int = 42
    sites: tuple[SiteSpec, ...] = GRID3_SITES
    background: bool = True
    #: 0 = legacy per-arrival background processes (bit-identical
    #: default); > 0 = batched background arrivals on this interval,
    #: the extreme-scale mode (one kernel event per site per interval).
    background_batch_s: float = 0.0
    #: None = use default_fault_windows(horizon); () = fault-free.
    fault_windows: Optional[tuple[DowntimeWindow, ...]] = None
    monitoring_interval_s: float = 300.0
    job_timeout_s: float = 1800.0
    tick_s: float = 5.0
    poll_s: float = 2.0
    #: "push" (event-driven, default) or "poll" (fixed-period legacy).
    control_plane: str = ControlPlaneMode.PUSH
    horizon_s: float = 24 * 3600.0
    #: per-job resource demands; empty = no policy run.
    job_requirements: dict = field(default_factory=dict)
    #: quota grants: resource -> amount granted per (user, site).
    #: None = users are quota-exempt (the paper's unconstrained runs).
    quota_per_site: Optional[dict] = None
    workload_overrides: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.servers:
            raise ValueError("a scenario needs at least one server")
        labels = [s.label for s in self.servers]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate server labels in {labels}")
        if self.n_dags < 1:
            raise ValueError("need at least one DAG")
        if self.background_batch_s < 0:
            raise ValueError("background_batch_s must be >= 0")
        if self.control_plane not in ControlPlaneMode.ALL:
            raise ValueError(
                f"unknown control plane {self.control_plane!r} "
                f"(expected one of {ControlPlaneMode.ALL})"
            )

    def workload_spec(self) -> WorkloadSpec:
        kwargs = dict(
            n_dags=self.n_dags,
            jobs_per_dag=self.jobs_per_dag,
            requirements=dict(self.job_requirements),
        )
        kwargs.update(self.workload_overrides)
        return WorkloadSpec(**kwargs)

    def resolved_fault_windows(self) -> tuple[DowntimeWindow, ...]:
        if self.fault_windows is None:
            return default_fault_windows(self.horizon_s)
        return self.fault_windows
