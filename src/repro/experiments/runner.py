"""Experiment runner: the full stack, N servers competing, one grid.

Protocol (paper §4.2): every server variant gets its *own* SPHINX
server + client + workload, but all submit into the *same* simulated
grid at the same time, so they contend for CPUs, queues, and bandwidth
exactly like the paper's concurrently-started server instances.

Workloads are structurally identical across servers: each server's
generator is seeded with the same scenario seed, so DAG shapes, job
runtimes, and file sizes match; only the id prefix (and hence LFNs)
differ, keeping replica catalogs disjoint.

External input files are pre-staged round-robin across the grid's
sites, so most jobs must move at least one input — the paper's
"including the time to transfer remotely located input files onto the
site it is expected that each job will take about three or four
minutes".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import obs as obs_mod
from repro.core.client import SphinxClient
from repro.core.server import ServerConfig, SphinxServer
from repro.experiments.scenarios import Scenario, ServerSpec
from repro.services.condorg import CondorG
from repro.services.gridftp import GridFtpService
from repro.services.monitoring import MonitoringService
from repro.services.rls import ReplicaService
from repro.services.rpc import RpcBus
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams
from repro.simgrid.grid import Grid, make_grid3
from repro.simgrid.vo import User, VirtualOrganization
from repro.workflow.generator import WorkloadGenerator

__all__ = ["run_scenario", "ExperimentResult", "ServerResult"]


@dataclass(slots=True)
class ServerResult:
    """Everything the figures need from one server variant."""

    label: str
    algorithm: str
    use_feedback: bool
    finished_dags: int
    total_dags: int
    #: dag_id -> seconds (only finished DAGs)
    dag_completion_times: dict[str, float]
    #: elapsed seconds of dags still unfinished at run end (censored
    #: observations — a scheduler that cannot finish a DAG must not get
    #: a *better* average for it)
    censored_dag_times: list[float]
    job_completion_times: list[float]
    job_idle_times: list[float]
    job_execution_times: list[float]
    resubmissions: int
    timeouts: int
    jobs_per_site: dict[str, int]
    avg_completion_per_site: dict[str, float]
    feedback_snapshot: dict[str, tuple[int, int]]
    #: eviction tolerance: evict messages sent off draining sites,
    #: attempts planned with a checkpoint resume, and total CPU-seconds
    #: the kills discarded (zero on eviction-free runs).
    migrations: int = 0
    checkpoint_restores: int = 0
    preempted_work_s: float = 0.0

    @property
    def avg_dag_completion_s(self) -> float:
        """Mean over all DAGs; unfinished ones enter at their censored
        (run-end) elapsed time, a lower bound on their true cost."""
        values = list(self.dag_completion_times.values()) + \
            list(self.censored_dag_times)
        if not values:
            return float("nan")
        return float(np.mean(values))

    @property
    def avg_job_execution_s(self) -> float:
        if not self.job_execution_times:
            return float("nan")
        return float(np.mean(self.job_execution_times))

    @property
    def avg_job_idle_s(self) -> float:
        if not self.job_idle_times:
            return float("nan")
        return float(np.mean(self.job_idle_times))


@dataclass(slots=True)
class ExperimentResult:
    scenario_name: str
    horizon_reached: bool
    elapsed_sim_s: float
    #: kernel events processed over the whole run — the denominator for
    #: events/second throughput reporting (see BENCH_SUITE.json)
    event_count: int = 0
    #: RPC round trips dispatched on the bus over the whole run
    rpc_count: int = 0
    servers: dict[str, ServerResult] = field(default_factory=dict)

    def __getitem__(self, label: str) -> ServerResult:
        return self.servers[label]


def _build_server(
    env: Environment,
    bus: RpcBus,
    scenario: Scenario,
    spec: ServerSpec,
    grid: Grid,
    monitoring: MonitoringService,
    rls: ReplicaService,
    obs=None,
    chaos=None,
) -> SphinxServer:
    config = ServerConfig(
        name=spec.label,
        algorithm=spec.algorithm,
        algorithm_kwargs=dict(spec.algorithm_kwargs),
        use_feedback=spec.use_feedback,
        mode=scenario.control_plane,
        tick_s=scenario.tick_s,
        job_timeout_s=scenario.job_timeout_s,
        use_prediction_correction=spec.use_prediction_correction,
        estimator_mode=spec.estimator_mode,
        prediction_correction_strength=spec.prediction_correction_strength,
        reserve_ahead=spec.reserve_ahead,
        reservation_slack=spec.reservation_slack,
        view_cache=spec.view_cache,
        checkpoint_interval_s=0.0,  # recovery is exercised separately
        migrate_on_drain=spec.migrate_on_drain,
        job_checkpoint_interval_s=spec.job_checkpoint_interval_s,
        job_checkpoint_cost_s=spec.job_checkpoint_cost_s,
    )
    if chaos is not None:
        # Chaos runs need survivable settings (checkpoints, transactional
        # delivery, presumed-lost requeue); an inactive plan changes
        # nothing, keeping chaos-disabled runs bit-identical.
        chaos.tune_server_config(config, scenario)
    # Servers read the *advertised* catalog — the static information a
    # 2004 scheduler actually had, which may overstate usable capacity.
    return SphinxServer(env, bus, config, grid.advertised_catalog,
                        monitoring, rls, obs=obs)


def run_scenario(scenario: Scenario,
                 env: Optional[Environment] = None,
                 obs=None,
                 chaos=None,
                 heartbeat=None) -> ExperimentResult:
    """Run one scenario to completion (or its horizon).

    The event-driven control plane runs on the lean kernel
    (``Environment(lean=True)``): same physics, no bookkeeping events.
    Poll mode keeps the legacy kernel so its traces stay bit-identical
    to the historical baselines.

    ``obs`` is an optional :class:`repro.obs.Obs` facade.  When absent,
    every layer sees the shared no-op facade and the run is bit-identical
    to an uninstrumented one (no extra kernel events, no RNG draws).

    ``chaos`` is an optional :class:`repro.chaos.ChaosController` (duck-
    typed — this module never imports ``repro.chaos``).  It supplies the
    run's bus, tunes server configs for survivability, and arms its
    fault drills before the run starts.  With a no-op plan the
    controller is inert and the run is bit-identical to ``chaos=None``.

    ``heartbeat`` is an optional :class:`repro.obs.runtime.Heartbeat`:
    the kernel's instrumented loop gives it a wall-clock cadence check
    every few thousand events and it emits live progress records
    (stderr + JSONL) plus stall flags.  Wall-clock only — a heartbeat
    run's scheduling output is bit-identical to a bare one.
    """
    if env is None:
        env = Environment(lean=(scenario.control_plane == "push"))
    obs = obs_mod.get(obs)
    if obs.enabled:
        obs.bind(env)
        if obs.tracer.enabled:
            # Span mode also tallies processed kernel events by type;
            # the instrumented loop replicates run() exactly, so
            # event_count (and everything else) is unchanged.
            env.obs_tally = {}
    if heartbeat is not None:
        spec = scenario.workload_spec()
        heartbeat.bind(
            env, obs=obs,
            total_jobs=(scenario.n_dags
                        * getattr(spec, "jobs_per_dag", 0)
                        * len(scenario.servers)) or None,
        )
    rng = RngStreams(scenario.seed)
    grid = make_grid3(env, rng, sites=scenario.sites,
                      background=scenario.background,
                      background_batch_s=scenario.background_batch_s)
    grid.failures.schedule_windows(scenario.resolved_fault_windows())
    if obs.enabled:
        for site in grid:
            site.obs = obs

    if chaos is not None:
        bus = chaos.make_bus(env, obs=obs)
    else:
        bus = RpcBus(env, obs=obs)
    rls = ReplicaService(env, grid.site_names)
    gridftp = GridFtpService(env, grid, rls)
    # The bus reference exposes the "condor-g" reservation RPCs to
    # reserve-ahead servers; registration is pure dict work, so
    # reservation-less runs stay bit-identical.
    condorg = CondorG(env, grid, bus=bus)
    monitoring = MonitoringService(
        env, grid, update_interval_s=scenario.monitoring_interval_s
    )
    if obs.enabled and obs.config.sample_sites:
        # The only obs mode that *does* schedule kernel events: the
        # omniscient telemetry sampler, opted into explicitly (trace
        # CLI), never by golden-metric or benchmark paths.
        from repro.experiments.telemetry import GridTelemetry

        GridTelemetry(env, grid,
                      sample_interval_s=obs.config.telemetry_interval_s,
                      metrics=obs.metrics)

    vo = VirtualOrganization("repro")
    site_cycle = list(grid.site_names)
    clients: dict[str, SphinxClient] = {}
    servers: dict[str, SphinxServer] = {}

    for idx, spec in enumerate(scenario.servers):
        server = _build_server(env, bus, scenario, spec, grid, monitoring,
                               rls, obs=obs, chaos=chaos)
        user = User(f"user-{spec.label}", vo)
        _configure_policy(server, user, scenario, grid)
        client = SphinxClient(
            env, bus, server.service_name, condorg, gridftp, rls,
            user, client_id=f"client-{spec.label}", poll_s=scenario.poll_s,
            mode=scenario.control_plane,
            # Dedicated jitter stream per client: drawing backoff jitter
            # must never perturb workload/grid streams (and is only
            # drawn at all while a server is unreachable).
            rng=rng.stream(f"backoff-{spec.label}"),
            obs=obs,
        )
        servers[spec.label] = server
        clients[spec.label] = client
        if chaos is not None:
            # Grants live outside the warehouse (like the paper's policy
            # config file): a recovered server must have them re-applied.
            chaos.register(
                spec.label, server, client,
                reconfigure=lambda srv, user=user: _configure_policy(
                    srv, user, scenario, grid
                ),
            )

        # Identical workload structure per server: same seed, own prefix.
        gen = WorkloadGenerator(RngStreams(scenario.seed).stream("workload"))
        dags = gen.generate(scenario.workload_spec(), name_prefix=spec.label)
        for j, dag in enumerate(dags):
            # External inputs get TWO replicas at distinct sites — input
            # datasets lived on replicated storage elements; a single
            # site death must not erase a campaign's inputs.
            home = grid.site(site_cycle[(idx + j) % len(site_cycle)])
            backup = grid.site(
                site_cycle[(idx + j + len(site_cycle) // 2) % len(site_cycle)]
            )
            client.stage_external_inputs(dag, home)
            client.stage_external_inputs(dag, backup)
            env.process(client.submit_dag(dag))

    # Drive until every client's DAGs finish or the horizon hits.  Each
    # client settles its `done` event the instant its last DAG-finished
    # report lands, so the run stops at the true completion time (a
    # polling watchdog would round it up to its next wakeup and bias
    # every censored-DAG measurement by up to the poll period).
    if chaos is not None:
        chaos.install(env, grid, scenario)
    done_events = [c.done for c in clients.values()]
    run_t0 = time.perf_counter()
    env.run(until=env.any_of(
        [env.all_of(done_events), env.timeout(scenario.horizon_s)]
    ))
    run_wall_ms = (time.perf_counter() - run_t0) * 1e3
    all_done = all(ev.triggered for ev in done_events)
    if heartbeat is not None:
        heartbeat.finalize(env.now, env.event_count)
    if chaos is not None:
        # Crash drills replace server objects; the controller's dict
        # tracks the live incarnation of each label.
        servers = chaos.servers

    if obs.enabled:
        if env.obs_tally is not None:
            for etype, n in sorted(env.obs_tally.items()):
                obs.metrics.counter("kernel.events", type=etype).inc(n)
        obs.metrics.gauge("run.elapsed_sim_s").set(
            env.now if all_done else scenario.horizon_s
        )
        # Wall-clock attribution: per-phase totals from the exclusive
        # phase timers, with the unattributed remainder (event
        # dispatch, process switching, transfers...) booked to
        # "kernel" so the breakdown sums to the run's real wall time.
        phase_ms = obs.phases.wall_ms()
        for phase, ms in sorted(phase_ms.items()):
            obs.metrics.counter("server.wall_ms", phase=phase).inc(ms)
        obs.metrics.counter("server.wall_ms", phase="kernel").inc(
            max(0.0, run_wall_ms - sum(phase_ms.values()))
        )
        obs.tracer.close()

    result = ExperimentResult(
        scenario_name=scenario.name,
        horizon_reached=not all_done,
        elapsed_sim_s=env.now if all_done else scenario.horizon_s,
        event_count=env.event_count,
        rpc_count=bus.call_count,
    )
    for spec in scenario.servers:
        server = servers[spec.label]
        client = clients[spec.label]
        dags_table = server.warehouse.table("dags")
        censored = [
            result.elapsed_sim_s - dags_table.get(dag_id)["received_at"]
            for dag_id in server.unfinished_dags()
        ]
        result.servers[spec.label] = ServerResult(
            label=spec.label,
            algorithm=spec.algorithm,
            use_feedback=spec.use_feedback,
            finished_dags=client.finished_dag_count,
            total_dags=scenario.n_dags,
            dag_completion_times=server.dag_completion_times(),
            censored_dag_times=censored,
            job_completion_times=list(client.tracker.stats.completion_times),
            job_idle_times=list(client.tracker.stats.idle_times),
            job_execution_times=list(client.tracker.stats.execution_times),
            resubmissions=server.resubmission_count,
            timeouts=server.timeout_count,
            jobs_per_site=server.jobs_per_site(),
            avg_completion_per_site=server.estimator.snapshot(),
            feedback_snapshot=server.feedback.snapshot(),
            migrations=server.migration_count,
            checkpoint_restores=server.checkpoint_restore_count,
            preempted_work_s=server.preempted_work_s,
        )
    return result


def _configure_policy(server: SphinxServer, user: User,
                      scenario: Scenario, grid: Grid) -> None:
    if scenario.quota_per_site is None:
        server.policy.grant_unlimited(user.proxy)
        return
    for site in grid.site_names:
        for resource, amount in scenario.quota_per_site.items():
            server.policy.grant(user.proxy, site, resource, amount)
